// Package lifecycle closes the REsPoNse control loop: it watches live
// demand drift away from the matrix the installed plan was computed
// for, replans off the hot path through the context-aware public
// planner, stages the result as a versioned plan artifact behind
// fingerprint and power gates, and hot-swaps the always-on/on-demand/
// failover tables into the running controller with zero traffic
// disruption.
//
// The paper's operational claim (Figure 1b) is that such swaps are
// rare — a handful per hour on the GÉANT replay — because the
// energy-critical paths are largely demand-oblivious. This package is
// the component that *acts* on that claim instead of only measuring
// it: the deviation trigger uses the same per-pair relative-change
// statistic as the §3 trace analytics (internal/analysis), and the
// manager keeps an analysis.Replay of the active plan's fingerprint at
// every check, so the live loop's recomputation rate can be read with
// the very machinery that produced Figure 1b.
//
// # Trigger policy
//
// Every CheckEvery seconds the manager aggregates the offered demand
// of the controller's managed flows into a live matrix and compares it
// per pair against the planned baseline. A replan fires when the
// fraction of pairs whose relative change is at least Deviation
// reaches Spread — but only if the trigger is armed (hysteresis: after
// firing it re-arms once the spread falls below Hysteresis×Spread) and
// at least MinInterval has passed since the last replan.
//
// # Swap state machine
//
//	Idle ──trigger──▶ Replanning ──stage──▶ Swapping ──all retired──▶ Idle
//	  ▲                   │                    (gates: validity,
//	  │                   ├──error──▶ retry (backoff) fingerprint, power)
//	  │                   │              │
//	  │                   │   ≥ DegradedAfter consecutive failures
//	  │                   │              ▼
//	  └──────replan succeeds────── Degraded (all-on pinned)
//
// Replanning runs the planner (in a goroutine under Background, with
// cancellation; otherwise inline with a modeled ReplanLatency before
// staging). A panicking ReplanFunc is recovered and counted as a
// failed cycle; a replan that outlives ReplanDeadline is abandoned as
// a timeout. Staging re-checks drift against the trigger snapshot — a
// result the demand has already moved past is abandoned (Superseded)
// and the replan restarts from a fresh snapshot. A staged plan is
// serialized and re-read as a PR 2 plan artifact, then gated: invalid
// tables, a corrupted artifact or a round-trip mismatch reject it
// (the last-known-good artifact slot is untouched), an unchanged
// fingerprint makes it a no-op (the paper's common case), and a plan
// strictly worse in power under the live matrix is rejected. Only then
// does the swap begin: the new always-on set is pinned (waking its
// sleeping links), and every managed flow whose installed levels
// differ under the new plan is retargeted through
// te.Controller.Retarget — traffic keeps flowing on the old tables
// until each new always-on path forwards, then demand hands over
// atomically and the old flow drains and retires.
//
// # Failure handling and degraded mode
//
// A failed cycle — replan error, timeout, panic, or a staging rejected
// as invalid — re-arms the trigger and books a retry after a
// decorrelated-jitter backoff (deterministic from Opts.Seed), bounded
// below by RetryBase and above by RetryMax. After DegradedAfter
// consecutive failed cycles the manager enters the explicit Degraded
// state: it pins the all-on element set — the paper's always-correct
// fallback, every link powered and forwarding — and keeps retrying at
// the backoff cap. The first successful cycle (a swap, an unchanged
// fingerprint, or even a power-gate rejection, all of which prove the
// control plane computes valid plans again) exits Degraded and
// restores the installed plan's always-on pinning. Every transition is
// counted in Metrics and emitted on the JSONL trace.
//
// # Rollback rules
//
// A pair absent from (or unroutable in) the staged plan keeps its old
// tables — its flows are not retargeted and keep forwarding (counted
// in KeptPairs). A replan error (infeasible, canceled) keeps the old
// plan and baseline intact. Mid-swap link failures are handled by the
// controller's ordinary failure machinery on whichever tables the flow
// holds at that instant.
package lifecycle

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"response"
	"response/internal/analysis"
	"response/internal/metrics"
	"response/internal/power"
	"response/internal/sim"
	"response/internal/stats"
	"response/internal/te"
	"response/internal/topo"
	"response/internal/trace"
	"response/internal/traffic"
)

// State is the manager's lifecycle state.
type State uint8

// Lifecycle states.
const (
	// StateIdle: monitoring only; the installed plan is considered
	// current (the steady state).
	StateIdle State = iota
	// StateReplanning: a replan is in flight (inline latency window or
	// background goroutine); its result has not been staged yet.
	StateReplanning
	// StateSwapping: a staged plan passed the gates and its table
	// hot-swap is in progress; old flows are draining.
	StateSwapping
	// StateDegraded: DegradedAfter consecutive cycles failed; the
	// all-on element set is pinned (the always-correct fallback) and
	// replans keep retrying until one succeeds.
	StateDegraded
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateReplanning:
		return "replanning"
	case StateSwapping:
		return "swapping"
	case StateDegraded:
		return "degraded"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// ReplanFunc computes a fresh plan for the live demand matrix. It runs
// off the simulator's hot path (in its own goroutine under
// Opts.Background) and must honor ctx cancellation — the public
// response.Planner does. A panic is recovered by the manager and
// counted as a failed cycle.
type ReplanFunc func(ctx context.Context, live *traffic.Matrix) (*response.Plan, error)

// replanBudgetKey carries the manager's replan compute budget through
// the context, so a ReplanFunc (or a fault injector wrapping one) can
// model deadline pressure on the simulated clock, where real context
// deadlines — wall-clock — cannot reach.
type replanBudgetKey struct{}

func withReplanBudget(ctx context.Context, sec float64) context.Context {
	return context.WithValue(ctx, replanBudgetKey{}, sec)
}

// ReplanBudget returns the simulated-seconds compute budget the
// manager attached to a replan context (Opts.ReplanDeadline), if any.
func ReplanBudget(ctx context.Context) (float64, bool) {
	v, ok := ctx.Value(replanBudgetKey{}).(float64)
	return v, ok
}

// warmHintKey carries the manager's promoted plan through the replan
// context, so a ReplanFunc can warm-start the subset search from it
// (response.WithWarmStart) instead of planning from scratch. It rides
// the context for the same reason ReplanBudget does: the ReplanFunc
// signature is fixed, and fault injectors wrap it transparently.
type warmHintKey struct{}

func withWarmHint(ctx context.Context, p *response.Plan) context.Context {
	return context.WithValue(ctx, warmHintKey{}, p)
}

// WarmHint returns the warm-start seed the manager attached to a
// replan context — the promoted (current) plan at launch time — if
// any. Managers attach it unless Opts.NoWarmStart (or the policy
// knob) disables warm-starting.
func WarmHint(ctx context.Context) (*response.Plan, bool) {
	p, ok := ctx.Value(warmHintKey{}).(*response.Plan)
	return p, ok
}

// panicError wraps a recovered ReplanFunc panic.
type panicError struct{ v any }

func (e panicError) Error() string { return fmt.Sprintf("lifecycle: replan panicked: %v", e.v) }

// Opts parameterizes a Manager.
type Opts struct {
	// CheckEvery is the monitor cadence in simulated seconds (default
	// 900, the GÉANT trace interval).
	CheckEvery float64
	// Deviation is the per-pair relative demand change that counts a
	// pair as deviating (default 0.2 = 20%).
	Deviation float64
	// Spread is the fraction of planned pairs that must deviate to
	// fire a replan (default 0.25).
	Spread float64
	// Hysteresis re-arms the trigger only once the deviating fraction
	// falls below Hysteresis×Spread (default 0.5). After a completed
	// replan the baseline resets to the trigger snapshot, so ordinary
	// drift re-arms within a check or two; the band exists so demand
	// hovering just under the trigger level cannot fire back-to-back
	// replans.
	Hysteresis float64
	// MinInterval is the minimum simulated time between deviation-
	// triggered replans (default 1800 s — bounding the recomputation
	// rate the paper measures at ~4/hour). Failure retries are paced
	// by the backoff instead.
	MinInterval float64
	// ReplanLatency models the off-hot-path compute+deploy delay in
	// simulated seconds before an inline replan's result is staged
	// (default 60). Ignored under Background, where wall-clock compute
	// time takes its place.
	ReplanLatency float64
	// ReplanDeadline is the simulated-seconds budget for one replan
	// computation (0 = unbounded). The budget travels on the replan
	// context (ReplanBudget) so inline replans — which compute
	// instantly in wall time — can honor it; a background replan still
	// in flight when the budget elapses on the simulated clock is
	// canceled. A blown deadline is a failed cycle
	// (Metrics.ReplanTimeouts).
	ReplanDeadline float64
	// RetryBase and RetryMax bound the decorrelated-jitter backoff
	// between a failed cycle and its retry (defaults 60 s and
	// MinInterval/2). Retries bypass the deviation trigger and
	// MinInterval — they re-run an already-admitted cycle.
	RetryBase float64
	RetryMax  float64
	// DegradedAfter is the number of consecutive failed cycles that
	// trips the manager into StateDegraded, pinning the all-on element
	// set until a cycle succeeds (default 3; negative disables
	// degradation).
	DegradedAfter int
	// Seed drives the backoff jitter (default 1), keeping retry
	// schedules — and therefore whole chaos replays — deterministic
	// per seed.
	Seed int64
	// Background runs ReplanFunc in its own goroutine with a
	// cancellable context; the result is staged at the first check
	// after it completes. Completion timing then depends on wall-clock
	// speed, so runs are no longer seed-deterministic — the default
	// (inline + ReplanLatency) keeps the replay pinnable.
	Background bool
	// DrainGrace is how long retired flows keep their (idle) old
	// tables installed after handoff (default: the controller period).
	DrainGrace float64
	// Model prices elements for the power gate (default Cisco12000).
	Model response.PowerModel
	// MaxUtil is the utilization ceiling used by the power-gate
	// evaluation (default 0.9, the controller's activation threshold).
	MaxUtil float64
	// NoPowerGate disables the strictly-worse-in-power rejection.
	NoPowerGate bool
	// NoWarmStart stops the manager from attaching the promoted plan
	// to replan contexts as a warm-start seed (see WarmHint). Replans
	// then always run cold, the pre-warm-start behavior.
	NoWarmStart bool
	// ArtifactFilter, when non-nil, transforms the serialized plan
	// artifact between the staging write and the gate's re-read — the
	// fault-injection hook (internal/faultinject corrupts or truncates
	// through it). A filtered artifact that no longer round-trips is
	// rejected and the last-known-good slot is left untouched.
	ArtifactFilter func([]byte) []byte
	// Events, when non-nil, receives the lifecycle transition trace
	// (span "lifecycle": check/trigger/replan/stage/swap/retry/
	// degraded/recovered/...).
	Events *trace.EventWriter
	// Metrics, when non-nil, receives zero-alloc counter increments
	// mirroring the Metrics snapshot for concurrent scrapers (replan
	// outcomes, swap durations, degraded time) — the /metrics feed.
	Metrics *metrics.Runtime
	// OnSwap, when non-nil, runs at each migrated flow's demand
	// handoff; applications that hold *Flow references re-point them
	// here.
	OnSwap func(old, new *sim.Flow)
}

func (o *Opts) defaults(c *te.Controller) {
	if o.CheckEvery == 0 {
		o.CheckEvery = 900
	}
	if o.Deviation == 0 {
		o.Deviation = 0.2
	}
	if o.Spread == 0 {
		o.Spread = 0.25
	}
	if o.Hysteresis == 0 {
		o.Hysteresis = 0.5
	}
	if o.MinInterval == 0 {
		o.MinInterval = 1800
	}
	if o.ReplanLatency == 0 {
		o.ReplanLatency = 60
	}
	if o.RetryBase == 0 {
		o.RetryBase = 60
	}
	if o.RetryMax == 0 {
		o.RetryMax = o.MinInterval / 2
	}
	if o.RetryMax < o.RetryBase {
		o.RetryMax = o.RetryBase
	}
	if o.DegradedAfter == 0 {
		o.DegradedAfter = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.DrainGrace == 0 {
		o.DrainGrace = c.Period()
	}
	if o.Model == nil {
		o.Model = power.Cisco12000{}
	}
	if o.MaxUtil == 0 {
		o.MaxUtil = 0.9
	}
}

// Metrics are the manager's cumulative counters.
type Metrics struct {
	// Checks counts monitor ticks; LastDeviation is the deviating-pair
	// fraction observed at the latest one.
	Checks        int
	LastDeviation float64
	// Triggers counts replans fired by the deviation policy; Replans
	// counts completed replan computations (triggered, retried or
	// forced); Retries counts backoff-paced retries of failed cycles.
	Triggers int
	Replans  int
	Retries  int
	// Superseded counts replan results abandoned because demand had
	// already drifted past the trigger snapshot when they completed.
	Superseded int
	// ReplanFailed counts replan errors (infeasible, injected,
	// canceled, ...); ReplanTimeouts the subset abandoned for blowing
	// ReplanDeadline; ReplanPanics the subset that panicked and was
	// recovered. ConsecutiveFailures is the current failed-cycle
	// streak (staging rejections included), reset by any success.
	ReplanFailed        int
	ReplanTimeouts      int
	ReplanPanics        int
	ConsecutiveFailures int
	// RejectedInvalid counts staged plans failing structural
	// validation or the artifact round trip (bit-flipped or truncated
	// artifacts land here); RejectedPower counts plans strictly worse
	// in power under the live matrix.
	RejectedInvalid int
	RejectedPower   int
	// Unchanged counts replans whose tables fingerprint-matched the
	// installed plan — recomputation without redeployment, the paper's
	// common case.
	Unchanged int
	// DegradedEntered/DegradedExited count transitions through the
	// all-on fallback state; DegradedSec is the total simulated time
	// spent in it.
	DegradedEntered int
	DegradedExited  int
	DegradedSec     float64
	// Swaps counts hot-swaps begun; SwapsDone counts swaps fully
	// drained; MigratedFlows counts flows retargeted across all swaps.
	Swaps         int
	SwapsDone     int
	MigratedFlows int
	// KeptPairs counts managed pairs that retained their old tables
	// across swaps because the staged plan had no (usable) entry for
	// them — the rollback rule.
	KeptPairs int
}

// Manager is the plan lifecycle manager: monitor, replanner and
// hot-swapper over one simulator/controller pair. Drive it entirely
// from the simulator's event loop (it schedules itself); it is not
// safe for concurrent use except for the background replan goroutine
// it owns.
type Manager struct {
	s      *sim.Simulator
	c      *te.Controller
	replan ReplanFunc
	opts   Opts

	current *response.Plan
	planned *traffic.Matrix // demand baseline of the current plan
	trigger *traffic.Matrix // live snapshot at the last trigger

	state         State
	armed         bool
	stopped       bool
	lastReplanAt  float64
	pendingRetire int
	lastMigrated  int     // flows migrated by the in-progress/last swap
	swapStartAt   float64 // sim time the in-progress swap began
	artifact      []byte

	// failure machinery
	rng           *rand.Rand
	backoff       float64 // previous retry delay (decorrelated jitter state)
	consecFail    int
	retryPending  bool
	timedOut      bool    // the in-flight replan was canceled by the deadline
	degradedSince float64 // entry time of the current Degraded episode

	cancel   context.CancelFunc
	inFlight bool // a background replan goroutine is running
	gen      int  // replan generation, guards stale deadline events
	resultCh chan replanOutcome

	hist analysis.Replay
	met  Metrics

	// Concurrent-read snapshot of the counters and state, re-published
	// at the end of every manager step on the driving goroutine.
	// Metrics and State read it, so pollers (the controld daemon) can
	// observe a running manager from any goroutine without touching the
	// live event-loop fields.
	snapMu    sync.Mutex
	snapMet   Metrics
	snapState State

	// reusable scratch for the per-check deviation computation
	live   *traffic.Matrix
	series traffic.Series
}

type replanOutcome struct {
	plan *response.Plan
	err  error
}

// New builds a manager over a running simulator/controller pair.
// current is the installed plan; replan computes candidate
// replacements. Call Start once flows are managed and their initial
// demands set — the live matrix at that point becomes the planned
// baseline.
func New(s *sim.Simulator, c *te.Controller, current *response.Plan, replan ReplanFunc, opts Opts) *Manager {
	opts.defaults(c)
	m := &Manager{
		s:       s,
		c:       c,
		replan:  replan,
		opts:    opts,
		current: current,
		armed:   true,
		state:   StateIdle,
		rng:     rand.New(rand.NewSource(opts.Seed)),
		live:    traffic.NewMatrix(),
		series:  traffic.Series{Matrices: make([]*traffic.Matrix, 0, 2)},
	}
	m.lastReplanAt = math.Inf(-1)
	m.resultCh = make(chan replanOutcome, 1)
	m.hist.IntervalSec = opts.CheckEvery
	m.publish()
	return m
}

// publish re-copies the live counters and state into the concurrent-
// read snapshot. It runs at the end of every manager step, on the
// goroutine driving the simulator — the only writer of the live fields
// — so the snapshot is exact whenever the event loop is quiescent and
// at most one step stale while it runs.
func (m *Manager) publish() {
	met := m.met
	if m.state == StateDegraded {
		met.DegradedSec += m.s.Now() - m.degradedSince
	}
	m.snapMu.Lock()
	m.snapMet = met
	m.snapState = m.state
	m.snapMu.Unlock()
}

// Start captures the planned-demand baseline from the currently
// managed flows and begins periodic deviation checks.
func (m *Manager) Start() {
	m.buildLive()
	m.planned = m.live.Clone()
	var tick func()
	tick = func() {
		if m.stopped {
			return
		}
		m.check()
		m.s.After(m.opts.CheckEvery, tick)
	}
	m.s.After(m.opts.CheckEvery, tick)
}

// Stop halts monitoring and cancels any in-flight background replan. A
// background result that completes after Stop is discarded without
// touching the simulator.
func (m *Manager) Stop() {
	m.stopped = true
	if m.cancel != nil {
		m.cancel()
		m.cancel = nil
	}
	m.publish()
}

// State returns the lifecycle state as of the manager's latest step.
// Unlike the other Manager methods it is safe to call from any
// goroutine while the simulator runs.
func (m *Manager) State() State {
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	return m.snapState
}

// Metrics returns a copy of the cumulative counters as of the
// manager's latest step (copy-on-read: the returned value never
// aliases live state). Unlike the other Manager methods it is safe to
// call from any goroutine while the simulator runs — pollers such as
// the controld daemon read a running manager this way; while the event
// loop is mid-step the snapshot may trail the live counters by at most
// that one step.
func (m *Manager) Metrics() Metrics {
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	return m.snapMet
}

// CurrentPlan returns the installed plan (the staged one as soon as a
// swap begins).
func (m *Manager) CurrentPlan() *response.Plan { return m.current }

// StagedArtifact returns the serialized plan artifact of the most
// recently staged plan — the last-known-good slot (nil before the
// first successful staging). The bytes are the exact PR 2 versioned
// artifact a deployment would ship; a corrupted or rejected staging
// never overwrites them.
func (m *Manager) StagedArtifact() []byte { return m.artifact }

// Policy is the hot-patchable subset of Opts: the deviation-trigger
// thresholds, the replan deadline and the retry backoff. The controld
// daemon's config-PATCH endpoint applies one to a running manager so a
// tenant can tighten or relax its control loop without a restart (and
// therefore without a traffic-disrupting re-registration).
type Policy struct {
	// Deviation, Spread and Hysteresis are the trigger thresholds
	// (Opts fields of the same names).
	Deviation  float64
	Spread     float64
	Hysteresis float64
	// MinInterval paces deviation-triggered replans; ReplanDeadline is
	// the per-replan compute budget (0 = unbounded).
	MinInterval    float64
	ReplanDeadline float64
	// RetryBase and RetryMax bound the failed-cycle backoff.
	RetryBase float64
	RetryMax  float64
	// DegradedAfter is the consecutive-failure count tripping the
	// all-on fallback (negative disables degradation).
	DegradedAfter int
	// NoWarmStart disables warm-starting replans from the promoted
	// plan (Opts field of the same name).
	NoWarmStart bool
}

// Validate reports the first reason p cannot be applied.
func (p Policy) Validate() error {
	switch {
	case !(p.Deviation > 0 && p.Deviation <= 10):
		return fmt.Errorf("lifecycle: deviation must be in (0, 10], got %g", p.Deviation)
	case !(p.Spread > 0 && p.Spread <= 1):
		return fmt.Errorf("lifecycle: spread must be in (0, 1], got %g", p.Spread)
	case !(p.Hysteresis > 0 && p.Hysteresis <= 1):
		return fmt.Errorf("lifecycle: hysteresis must be in (0, 1], got %g", p.Hysteresis)
	case p.MinInterval < 0:
		return fmt.Errorf("lifecycle: min interval must be >= 0, got %g", p.MinInterval)
	case p.ReplanDeadline < 0:
		return fmt.Errorf("lifecycle: replan deadline must be >= 0, got %g", p.ReplanDeadline)
	case p.RetryBase <= 0:
		return fmt.Errorf("lifecycle: retry base must be > 0, got %g", p.RetryBase)
	case p.RetryMax < p.RetryBase:
		return fmt.Errorf("lifecycle: retry max %g below retry base %g", p.RetryMax, p.RetryBase)
	case p.DegradedAfter == 0:
		return fmt.Errorf("lifecycle: degraded-after must be nonzero (negative disables)")
	}
	return nil
}

// Policy returns the currently effective policy values.
func (m *Manager) Policy() Policy {
	return Policy{
		Deviation:      m.opts.Deviation,
		Spread:         m.opts.Spread,
		Hysteresis:     m.opts.Hysteresis,
		MinInterval:    m.opts.MinInterval,
		ReplanDeadline: m.opts.ReplanDeadline,
		RetryBase:      m.opts.RetryBase,
		RetryMax:       m.opts.RetryMax,
		DegradedAfter:  m.opts.DegradedAfter,
		NoWarmStart:    m.opts.NoWarmStart,
	}
}

// SetPolicy validates p and applies it to the running manager: the
// next check, replan and retry use the new thresholds; nothing already
// scheduled (an in-flight replan, a booked retry) is re-timed. Like
// every Manager method except Metrics and State it must run on the
// goroutine driving the simulator.
func (m *Manager) SetPolicy(p Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	m.opts.Deviation = p.Deviation
	m.opts.Spread = p.Spread
	m.opts.Hysteresis = p.Hysteresis
	m.opts.MinInterval = p.MinInterval
	m.opts.ReplanDeadline = p.ReplanDeadline
	m.opts.RetryBase = p.RetryBase
	m.opts.RetryMax = p.RetryMax
	m.opts.DegradedAfter = p.DegradedAfter
	m.opts.NoWarmStart = p.NoWarmStart
	return nil
}

// History returns the per-check record of the active plan's tables
// fingerprint as an analysis.Replay, so Recomputations and RatePerHour
// read the live loop with the Figure 1b machinery.
func (m *Manager) History() *analysis.Replay { return &m.hist }

// buildLive aggregates managed-flow offered demand into m.live,
// reusing its storage.
func (m *Manager) buildLive() {
	m.live.Reset()
	m.c.EachManaged(func(f *sim.Flow) {
		if f.Demand > 0 {
			m.live.Add(f.O, f.D, f.Demand)
		}
	})
}

// deviation returns the fraction of pairs whose relative demand change
// from base to cur is at least Deviation — the §3 per-pair deviation
// statistic reduced to one trigger number. Pairs carrying live demand
// with no baseline entry (traffic that appeared after the plan) are
// infinitely deviated: PerFlowChanges cannot see them, so they are
// counted explicitly.
func (m *Manager) deviation(base, cur *traffic.Matrix) float64 {
	m.series.Matrices = append(m.series.Matrices[:0], base, cur)
	changes := traffic.PerFlowChanges(&m.series)
	deviating := stats.FractionAtLeast(changes, 100*m.opts.Deviation) * float64(len(changes))
	total := len(changes)
	for _, d := range cur.Demands() {
		if base.Rate(d.O, d.D) <= 0 {
			deviating++
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return deviating / float64(total)
}

// check is one monitor tick.
func (m *Manager) check() {
	defer m.publish()
	m.met.Checks++
	if rt := m.opts.Metrics; rt != nil {
		rt.Checks.Inc()
		rt.SimSeconds.Set(m.s.Now())
	}
	m.buildLive()
	dev := m.deviation(m.planned, m.live)
	m.met.LastDeviation = dev
	m.hist.Fingerprints = append(m.hist.Fingerprints, m.current.Fingerprint())
	m.opts.Events.Emit(m.s.Now(), "lifecycle", "check", -1, -1, -1, dev)

	switch m.state {
	case StateSwapping:
		return // drain in progress; nothing to decide
	case StateReplanning, StateDegraded:
		// Poll for a completed background replan; degraded retries and
		// inline stagings schedule themselves.
		if !m.opts.Background || !m.inFlight {
			return
		}
		select {
		case r := <-m.resultCh:
			m.cancel = nil
			m.stage(r.plan, r.err)
		default:
		}
	case StateIdle:
		if !m.armed {
			if dev < m.opts.Spread*m.opts.Hysteresis {
				m.armed = true
			}
			return
		}
		if dev >= m.opts.Spread && m.s.Now()-m.lastReplanAt >= m.opts.MinInterval {
			m.fire()
		}
	}
}

// fire begins a deviation-triggered replan from the current live
// matrix.
func (m *Manager) fire() {
	m.met.Triggers++
	if rt := m.opts.Metrics; rt != nil {
		rt.Triggers.Inc()
	}
	m.opts.Events.Emit(m.s.Now(), "lifecycle", "trigger", -1, -1, -1, m.met.LastDeviation)
	m.launch()
}

// launch starts one replan cycle (trigger or retry) from the current
// live matrix.
func (m *Manager) launch() {
	defer m.publish()
	m.armed = false
	m.lastReplanAt = m.s.Now()
	m.trigger = m.live.Clone()
	if m.state != StateDegraded {
		m.state = StateReplanning
	}
	m.gen++
	if m.opts.Background {
		ctx, cancel := context.WithCancel(context.Background())
		if !m.opts.NoWarmStart && m.current != nil {
			ctx = withWarmHint(ctx, m.current)
		}
		if m.opts.ReplanDeadline > 0 {
			ctx = withReplanBudget(ctx, m.opts.ReplanDeadline)
			gen := m.gen
			m.s.After(m.opts.ReplanDeadline, func() {
				if m.inFlight && m.gen == gen && m.cancel != nil {
					m.timedOut = true
					m.cancel()
					m.cancel = nil
				}
			})
		}
		m.cancel = cancel
		m.inFlight = true
		snapshot := m.trigger
		go func() {
			p, err := m.runReplan(ctx, snapshot)
			m.resultCh <- replanOutcome{plan: p, err: err}
		}()
		return
	}
	// Inline: compute now (the snapshot is the demand at trigger
	// time), stage after the modeled background latency.
	ctx := context.Background()
	if !m.opts.NoWarmStart && m.current != nil {
		ctx = withWarmHint(ctx, m.current)
	}
	if m.opts.ReplanDeadline > 0 {
		ctx = withReplanBudget(ctx, m.opts.ReplanDeadline)
	}
	p, err := m.runReplan(ctx, m.trigger)
	m.s.After(m.opts.ReplanLatency, func() { m.stage(p, err) })
}

// runReplan invokes the ReplanFunc with panic recovery: a panicking
// planner is a failed cycle, not a crashed control loop. The recover
// must live here — for background replans this runs inside the replan
// goroutine, where the manager's event-loop code cannot catch it.
func (m *Manager) runReplan(ctx context.Context, live *traffic.Matrix) (p *response.Plan, err error) {
	defer func() {
		if v := recover(); v != nil {
			p, err = nil, panicError{v: v}
		}
	}()
	return m.replan(ctx, live)
}

// stage receives a completed replan and runs the gate sequence.
func (m *Manager) stage(p *response.Plan, err error) {
	if m.stopped {
		return // late background result after Stop: discard
	}
	defer m.publish()
	m.met.Replans++
	if rt := m.opts.Metrics; rt != nil {
		rt.Replans.Inc()
	}
	m.inFlight = false
	if m.state == StateReplanning {
		m.state = StateIdle
	}
	if err != nil {
		m.met.ReplanFailed++
		op := "replan-error"
		var pe panicError
		switch {
		case errors.As(err, &pe):
			m.met.ReplanPanics++
			op = "replan-panic"
		case m.timedOut || errors.Is(err, context.DeadlineExceeded):
			m.met.ReplanTimeouts++
			op = "replan-timeout"
		}
		m.timedOut = false
		// Old plan and baseline stay; the failed cycle books a retry
		// (and may trip degradation).
		m.failedCycle(op)
		return
	}
	m.timedOut = false
	// Superseded? If demand has drifted past the trigger snapshot as
	// far as the drift that fired it, the result is stale: abandon it
	// and re-arm — the baseline is untouched, so the still-deviating
	// demand restarts the replan from a fresh snapshot at the first
	// check MinInterval allows (the rate bound holds even under a
	// sustained ramp that supersedes every result). In Degraded the
	// retry machinery keeps the recovery attempts coming instead.
	m.buildLive()
	if m.deviation(m.trigger, m.live) >= m.opts.Spread {
		m.met.Superseded++
		if rt := m.opts.Metrics; rt != nil {
			rt.Superseded.Inc()
		}
		m.armed = true
		m.opts.Events.Emit(m.s.Now(), "lifecycle", "superseded", -1, -1, -1, 0)
		if m.state == StateDegraded {
			m.scheduleRetry()
		}
		return
	}
	m.gateAndSwap(p)
}

// failedCycle accounts one failed replan/staging cycle: re-arm, emit,
// degrade after DegradedAfter consecutive failures, book a retry.
func (m *Manager) failedCycle(op string) {
	m.consecFail++
	m.met.ConsecutiveFailures = m.consecFail
	if rt := m.opts.Metrics; rt != nil {
		// The one funnel every failed cycle passes through; the op
		// string names the flavor.
		rt.ReplanFailed.Inc()
		switch op {
		case "replan-panic":
			rt.ReplanPanics.Inc()
		case "replan-timeout":
			rt.ReplanTimeouts.Inc()
		case "reject-invalid":
			rt.RejectedInvalid.Inc()
		}
	}
	m.armed = true
	m.opts.Events.Emit(m.s.Now(), "lifecycle", op, -1, -1, -1, float64(m.consecFail))
	if m.state != StateDegraded && m.opts.DegradedAfter > 0 && m.consecFail >= m.opts.DegradedAfter {
		m.enterDegraded()
	}
	m.scheduleRetry()
}

// enterDegraded pins the all-on element set — every link powered and
// forwarding, the paper's always-correct fallback — until a cycle
// succeeds.
func (m *Manager) enterDegraded() {
	m.state = StateDegraded
	m.met.DegradedEntered++
	if rt := m.opts.Metrics; rt != nil {
		rt.DegradedEntered.Inc()
	}
	m.degradedSince = m.s.Now()
	m.s.SetPinnedOn(topo.AllOn(m.s.T))
	m.opts.Events.Emit(m.s.Now(), "lifecycle", "degraded", -1, -1, -1, float64(m.consecFail))
}

// cycleSucceeded resets the failure machinery after any successful
// cycle and, if the manager was degraded, exits the fallback.
// restorePin re-pins the installed plan's always-on set; the swap path
// passes false because beginSwap pins the staged plan's set itself.
func (m *Manager) cycleSucceeded(restorePin bool) {
	m.consecFail = 0
	m.met.ConsecutiveFailures = 0
	m.backoff = 0
	if m.state != StateDegraded {
		return
	}
	m.met.DegradedExited++
	m.met.DegradedSec += m.s.Now() - m.degradedSince
	if rt := m.opts.Metrics; rt != nil {
		rt.DegradedExited.Inc()
		rt.DegradedSec.Add(m.s.Now() - m.degradedSince)
	}
	m.state = StateIdle
	if restorePin {
		m.s.SetPinnedOn(m.current.AlwaysOnSet())
	}
	m.opts.Events.Emit(m.s.Now(), "lifecycle", "recovered", -1, -1, -1, m.s.Now()-m.degradedSince)
}

// scheduleRetry books the next replan retry after a decorrelated-
// jitter backoff. At fire time the retry is abandoned if the manager
// is busy, stopped, or — outside Degraded — the demand has calmed
// below the trigger level (ordinary monitoring then resumes).
func (m *Manager) scheduleRetry() {
	if m.stopped || m.retryPending {
		return
	}
	m.retryPending = true
	m.s.After(m.nextBackoff(), func() {
		defer m.publish()
		m.retryPending = false
		if m.stopped || (m.state != StateIdle && m.state != StateDegraded) {
			return
		}
		m.buildLive()
		if m.state == StateIdle && m.deviation(m.planned, m.live) < m.opts.Spread {
			m.armed = true
			return
		}
		m.met.Retries++
		if rt := m.opts.Metrics; rt != nil {
			rt.Retries.Inc()
		}
		m.opts.Events.Emit(m.s.Now(), "lifecycle", "retry", -1, -1, -1, float64(m.consecFail))
		m.launch()
	})
}

// nextBackoff advances the decorrelated-jitter schedule: the first
// retry waits RetryBase, each later one a uniform draw from
// [RetryBase, 3×previous], capped at RetryMax.
func (m *Manager) nextBackoff() float64 {
	if m.backoff <= 0 {
		m.backoff = m.opts.RetryBase
	} else {
		m.backoff = m.opts.RetryBase + m.rng.Float64()*(3*m.backoff-m.opts.RetryBase)
		if m.backoff > m.opts.RetryMax {
			m.backoff = m.opts.RetryMax
		}
	}
	return m.backoff
}

// StageAndSwap force-stages an externally computed plan through the
// same gate sequence and hot-swap as a triggered replan — the operator
// override. It is only legal while the manager is idle.
func (m *Manager) StageAndSwap(p *response.Plan) error {
	if m.state != StateIdle {
		return fmt.Errorf("lifecycle: cannot stage in state %v", m.state)
	}
	if p == nil {
		return fmt.Errorf("lifecycle: nil plan")
	}
	m.met.Replans++
	if rt := m.opts.Metrics; rt != nil {
		rt.Replans.Inc()
	}
	m.buildLive()
	m.trigger = m.live.Clone()
	m.gateAndSwap(p)
	m.publish()
	return nil
}

// gateAndSwap runs the stage gates and, if they pass, begins the swap.
func (m *Manager) gateAndSwap(p *response.Plan) {
	now := m.s.Now()
	if p.Topology() != m.s.T || p.Tables().Validate() != nil {
		m.met.RejectedInvalid++
		m.failedCycle("reject-invalid")
		return
	}
	if p.Fingerprint() == m.current.Fingerprint() {
		// Recomputation confirmed the installed tables: adopt the
		// fresher baseline, deploy nothing.
		m.met.Unchanged++
		if rt := m.opts.Metrics; rt != nil {
			rt.Unchanged.Inc()
		}
		m.adoptBaseline()
		m.opts.Events.Emit(now, "lifecycle", "unchanged", -1, -1, -1, 0)
		m.cycleSucceeded(true)
		return
	}
	// Stage as a versioned plan artifact and verify the round trip:
	// what would ship is what was gated. The fault injector's filter
	// sits between the write and the re-read; a corrupted artifact
	// fails the round trip and the last-known-good slot stays.
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		m.met.RejectedInvalid++
		m.failedCycle("reject-invalid")
		return
	}
	raw := buf.Bytes()
	if f := m.opts.ArtifactFilter; f != nil {
		raw = f(raw)
	}
	loaded, err := response.ReadPlanFrom(bytes.NewReader(raw), p.Topology())
	if err != nil || loaded.Fingerprint() != p.Fingerprint() {
		m.met.RejectedInvalid++
		m.failedCycle("reject-invalid")
		return
	}
	m.artifact = raw
	if !m.opts.NoPowerGate {
		cur := m.current.Evaluate(m.live, m.opts.Model, m.opts.MaxUtil)
		cand := p.Evaluate(m.live, m.opts.Model, m.opts.MaxUtil)
		if cand.Watts > cur.Watts+1e-6 {
			// A worse plan is rejected, but the control plane proved
			// it computes valid plans: the cycle counts as a success
			// (a degraded manager recovers to the installed plan).
			m.met.RejectedPower++
			if rt := m.opts.Metrics; rt != nil {
				rt.RejectedPower.Inc()
			}
			m.adoptBaseline()
			m.opts.Events.Emit(now, "lifecycle", "reject-power", -1, -1, -1, cand.Watts-cur.Watts)
			m.cycleSucceeded(true)
			return
		}
	}
	m.opts.Events.Emit(now, "lifecycle", "stage", -1, -1, -1, float64(len(m.artifact)))
	m.cycleSucceeded(false) // beginSwap pins the staged plan's set
	m.beginSwap(p)
}

// pairDecision caches the per-pair migrate/keep choice during a swap.
type pairDecision struct {
	migrate bool
	levels  []topo.Path
}

// beginSwap hot-swaps the staged plan into the running controller.
// Only flows whose installed levels actually change are touched, so
// swap cost — time and allocations — is proportional to the migrated
// set, not the flow universe.
func (m *Manager) beginSwap(p *response.Plan) {
	m.state = StateSwapping
	m.met.Swaps++
	m.swapStartAt = m.s.Now()
	if rt := m.opts.Metrics; rt != nil {
		rt.Swaps.Inc()
	}
	m.opts.Events.Emit(m.s.Now(), "lifecycle", "swap", -1, -1, -1, 0)
	m.s.SetPinnedOn(p.AlwaysOnSet())
	decisions := make(map[[2]topo.NodeID]pairDecision)
	migrated := 0
	ropts := te.RetargetOpts{
		DrainGrace: m.opts.DrainGrace,
		OnHandoff:  m.opts.OnSwap,
		OnRetire:   m.flowRetired,
	}
	m.c.EachManaged(func(f *sim.Flow) {
		key := [2]topo.NodeID{f.O, f.D}
		dec, ok := decisions[key]
		if !ok {
			if ps, have := p.PathSet(f.O, f.D); have {
				levels := ps.Levels()
				if !sameLevels(f.Paths, levels) {
					dec = pairDecision{migrate: true, levels: levels}
				}
			} else {
				m.met.KeptPairs++ // rollback rule: no entry, keep old tables
			}
			decisions[key] = dec
		}
		if !dec.migrate {
			return
		}
		nf, err := m.c.Retarget(f, dec.levels, ropts)
		if err != nil || nf == nil {
			// Unroutable under the new plan: rollback rule — this
			// flow keeps its old tables.
			dec.migrate = false
			decisions[key] = dec
			m.met.KeptPairs++
			return
		}
		m.pendingRetire++
		migrated++
	})
	m.met.MigratedFlows += migrated
	m.lastMigrated = migrated
	m.current = p
	m.adoptBaseline()
	if m.pendingRetire == 0 {
		m.swapDone()
	}
}

// flowRetired is the per-flow drain completion callback.
func (m *Manager) flowRetired(old, new *sim.Flow) {
	m.pendingRetire--
	if m.pendingRetire == 0 && m.state == StateSwapping {
		m.swapDone()
		m.publish()
	}
}

func (m *Manager) swapDone() {
	m.state = StateIdle
	m.met.SwapsDone++
	if rt := m.opts.Metrics; rt != nil {
		rt.SwapsDone.Inc()
		rt.MigratedFlows.Add(uint64(m.lastMigrated))
		rt.SwapDurationSec.Add(m.s.Now() - m.swapStartAt)
	}
	m.opts.Events.Emit(m.s.Now(), "lifecycle", "swap-done", -1, -1, -1, float64(m.lastMigrated))
}

// adoptBaseline makes the trigger-time snapshot the planned baseline.
func (m *Manager) adoptBaseline() {
	if m.trigger != nil {
		m.planned = m.trigger
	}
}

// sameLevels reports whether two level lists install identical paths.
func sameLevels(a, b []topo.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
