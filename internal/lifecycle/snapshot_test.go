package lifecycle

// The concurrent-snapshot contract of Manager.Metrics/State: the
// controld daemon polls a running manager from HTTP handler goroutines
// while the simulator advances on the tenant loop and a Background
// replan goroutine completes into the result channel. Under -race this
// test is the proof that the copy-on-read accessors never touch the
// live event-loop fields.

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestMetricsConcurrentSnapshot hammers Metrics/State/Policy reads
// from many goroutines while the simulator runs a Background-replan
// lifecycle to completion. Run under -race (CI does).
func TestMetricsConcurrentSnapshot(t *testing.T) {
	r := newRig(t, 1, 1, 0.3)
	m := New(r.s, r.c, r.plan, r.liveReplan(), Opts{
		CheckEvery: 100, MinInterval: 100, Background: true,
	})
	m.Start()
	r.scaleFirst(0.5, 3) // drift well past the trigger

	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var reads int
			for !stop.Load() {
				met := m.Metrics()
				st := m.State()
				if met.Checks < 0 || st > StateDegraded {
					t.Errorf("impossible snapshot: checks=%d state=%v", met.Checks, st)
					return
				}
				reads++
			}
			if reads == 0 {
				t.Error("poller never completed a read")
			}
		}()
	}

	// Drive until the background replan has been staged (or plenty of
	// simulated time has passed); checks poll the result channel.
	for end := 200.0; end <= 60*3600; end += 200 {
		r.s.Run(end)
		if m.Metrics().Replans > 0 && m.State() == StateIdle {
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	m.Stop()

	met := m.Metrics()
	if met.Triggers == 0 || met.Replans == 0 {
		t.Fatalf("background replan never completed under pollers: %+v", met)
	}
}

// TestSetPolicyValidatesAndApplies: SetPolicy rejects nonsense and
// applies sane values to the live trigger machinery.
func TestSetPolicyValidatesAndApplies(t *testing.T) {
	r := newRig(t, 2, 1, 0.3)
	m := New(r.s, r.c, r.plan, r.sameReplan(), Opts{CheckEvery: 100, MinInterval: 100})
	m.Start()

	p := m.Policy()
	if p.Deviation != 0.2 || p.Spread != 0.25 {
		t.Fatalf("default policy = %+v, want the Opts defaults", p)
	}
	bad := p
	bad.Spread = 1.5
	if err := m.SetPolicy(bad); err == nil {
		t.Fatal("SetPolicy accepted spread > 1")
	}
	bad = p
	bad.RetryMax = p.RetryBase / 2
	if err := m.SetPolicy(bad); err == nil {
		t.Fatal("SetPolicy accepted retry max < retry base")
	}
	bad = p
	bad.DegradedAfter = 0
	if err := m.SetPolicy(bad); err == nil {
		t.Fatal("SetPolicy accepted degraded-after = 0")
	}

	// Raise the spread so drift that would have fired no longer does.
	p.Spread = 0.95
	if err := m.SetPolicy(p); err != nil {
		t.Fatal(err)
	}
	if got := m.Policy().Spread; got != 0.95 {
		t.Fatalf("spread = %g after patch, want 0.95", got)
	}
	r.scaleFirst(0.5, 3)
	r.s.Run(1000)
	if got := m.Metrics().Triggers; got != 0 {
		t.Fatalf("triggers = %d under patched spread 0.95, want 0", got)
	}
	// Patch it back down: the very same drift now fires.
	p.Spread = 0.25
	if err := m.SetPolicy(p); err != nil {
		t.Fatal(err)
	}
	r.s.Run(2000)
	if got := m.Metrics().Triggers; got == 0 {
		t.Fatal("no trigger after restoring spread 0.25")
	}
}
