package mcf

import (
	"runtime"
	"testing"

	"response/internal/power"
	"response/internal/topo"
	"response/internal/traffic"
)

// equivTopologies are the named topologies the equivalence properties
// run on, plus deterministic random graphs.
func equivTopologies(t *testing.T) map[string]*topo.Topology {
	t.Helper()
	ft, err := topo.NewFatTree(4, topo.FatTreeOpts{WithHosts: true})
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]*topo.Topology{
		"geant":    topo.NewGeant(),
		"example":  topo.NewExample(topo.ExampleOpts{}).Topology,
		"fattree4": ft.Topology,
	}
	for _, seed := range []int64{7, 19, 43} {
		tp := randomEquivTopology(seed)
		out[tp.Name] = tp
	}
	return out
}

// randomEquivTopology builds a deterministic random router mesh with
// mixed capacities, tight enough that capacity constraints bind.
func randomEquivTopology(seed int64) *topo.Topology {
	tp := topo.New("rand" + string(rune('A'+seed%26)))
	rng := seed
	next := func(n int64) int64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		v := rng % n
		if v < 0 {
			v += n
		}
		return v
	}
	nodes := int(8 + next(5))
	ids := make([]topo.NodeID, nodes)
	for i := range ids {
		ids[i] = tp.AddNode(string(rune('A'+i)), topo.KindRouter)
	}
	caps := []float64{100 * topo.Mbps, 400 * topo.Mbps, 1 * topo.Gbps}
	for i := 1; i < nodes; i++ {
		tp.AddLink(ids[i-1], ids[i], caps[next(3)], float64(1+next(5))/1000)
	}
	for c := 0; c < nodes; c++ {
		a, b := int(next(int64(nodes))), int(next(int64(nodes)))
		if a == b {
			continue
		}
		if _, dup := tp.ArcBetween(ids[a], ids[b]); dup {
			continue
		}
		tp.AddLink(ids[a], ids[b], caps[next(3)], float64(1+next(5))/1000)
	}
	return tp
}

// demandSets returns one capacity-slack (ε) and one capacity-binding
// demand set for a topology.
func demandSets(t *testing.T, tp *topo.Topology) map[string][]traffic.Demand {
	t.Helper()
	var endpoints []topo.NodeID
	for _, n := range tp.Nodes() {
		if n.Kind == topo.KindHost {
			endpoints = append(endpoints, n.ID)
		}
	}
	if len(endpoints) == 0 {
		for _, n := range tp.Nodes() {
			endpoints = append(endpoints, n.ID)
		}
	}
	eps := traffic.Uniform(endpoints, 1).Demands()
	shape := traffic.Gravity(tp, traffic.GravityOpts{Nodes: endpoints, TotalRate: 1})
	scale := MaxFeasibleScale(tp, shape, RouteOpts{}, 0.05)
	sets := map[string][]traffic.Demand{"epsilon": eps}
	if scale > 0 {
		sets["tight"] = shape.Scale(0.8 * scale).Demands()
	}
	return sets
}

func routingsEqual(a, b *Routing) bool {
	if len(a.Paths) != len(b.Paths) {
		return false
	}
	for k, p := range a.Paths {
		q, ok := b.Paths[k]
		if !ok || !p.Equal(q) {
			return false
		}
	}
	return true
}

// TestIncrementalMatchesFullReroute is the central equivalence
// property of the delta-rerouting engine: on every topology, demand
// set, and candidate ordering, the incremental greedy must produce the
// same active set, the same routing, and the same power as the
// from-scratch reference implementation.
func TestIncrementalMatchesFullReroute(t *testing.T) {
	m := power.Cisco12000{}
	for name, tp := range equivTopologies(t) {
		for dname, demands := range demandSets(t, tp) {
			for _, ord := range []Order{PowerDesc, PowerAsc, DegreeAsc, Random} {
				opts := GreedyOpts{Order: ord, Seed: 99}
				aInc, rInc, errInc := GreedyMinSubset(tp, demands, m, opts)
				opts.FullReroute = true
				aRef, rRef, errRef := GreedyMinSubset(tp, demands, m, opts)
				label := name + "/" + dname
				if (errInc == nil) != (errRef == nil) {
					t.Fatalf("%s order %d: error mismatch: inc=%v ref=%v", label, ord, errInc, errRef)
				}
				if errInc != nil {
					continue
				}
				if !aInc.Equal(aRef) {
					t.Errorf("%s order %d: active sets differ: inc=%v ref=%v", label, ord, aInc, aRef)
					continue
				}
				wInc := power.NetworkWatts(tp, m, aInc)
				wRef := power.NetworkWatts(tp, m, aRef)
				if wInc != wRef {
					t.Errorf("%s order %d: watts differ: inc=%v ref=%v", label, ord, wInc, wRef)
				}
				if !routingsEqual(rInc, rRef) {
					t.Errorf("%s order %d: routings differ", label, ord)
				}
			}
		}
	}
}

// TestIncrementalMatchesFullRerouteKeepOn covers the pinned-elements
// path the planner's on-demand stage exercises (§4.2: always-on X/Y
// carried over).
func TestIncrementalMatchesFullRerouteKeepOn(t *testing.T) {
	m := power.Cisco12000{}
	tp := topo.NewGeant()
	for dname, demands := range demandSets(t, tp) {
		// Pin the elements an ε-subset solve keeps on, as Plan does.
		keep, _, err := GreedyMinSubset(tp, demandSets(t, tp)["epsilon"], m, GreedyOpts{Order: PowerDesc})
		if err != nil {
			t.Fatal(err)
		}
		opts := GreedyOpts{Order: PowerDesc, KeepOn: keep}
		aInc, rInc, errInc := GreedyMinSubset(tp, demands, m, opts)
		opts.FullReroute = true
		aRef, rRef, errRef := GreedyMinSubset(tp, demands, m, opts)
		if (errInc == nil) != (errRef == nil) {
			t.Fatalf("%s: error mismatch: inc=%v ref=%v", dname, errInc, errRef)
		}
		if errInc != nil {
			continue
		}
		if !aInc.Equal(aRef) {
			t.Errorf("%s: active sets differ: inc=%v ref=%v", dname, aInc, aRef)
		}
		if !routingsEqual(rInc, rRef) {
			t.Errorf("%s: routings differ", dname)
		}
	}
}

// TestOptimalSubsetDeterministicAcrossGOMAXPROCS asserts that the
// parallel multi-restart search returns bit-identical results no
// matter how many workers the scheduler gets: the winner selection
// tie-breaks on run index, not completion order.
func TestOptimalSubsetDeterministicAcrossGOMAXPROCS(t *testing.T) {
	m := power.Cisco12000{}
	tp := topo.NewGeant()
	demands := demandSets(t, tp)["epsilon"]
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	type run struct {
		active  *topo.ActiveSet
		routing *Routing
		watts   float64
	}
	var runs []run
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		a, r, err := OptimalSubset(tp, demands, m, OptimalOpts{Seed: 5})
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		runs = append(runs, run{active: a, routing: r, watts: power.NetworkWatts(tp, m, a)})
	}
	for i := 1; i < len(runs); i++ {
		if !runs[0].active.Equal(runs[i].active) {
			t.Errorf("active set differs between GOMAXPROCS settings (run 0 vs %d)", i)
		}
		if runs[0].watts != runs[i].watts {
			t.Errorf("watts differ: %v vs %v", runs[0].watts, runs[i].watts)
		}
		if !routingsEqual(runs[0].routing, runs[i].routing) {
			t.Errorf("routing differs between GOMAXPROCS settings (run 0 vs %d)", i)
		}
	}
}

// TestOptimalSubsetIncrementalMatchesReference cross-checks the whole
// multi-restart pipeline in both engine modes.
func TestOptimalSubsetIncrementalMatchesReference(t *testing.T) {
	m := power.Cisco12000{}
	tp := topo.NewExample(topo.ExampleOpts{}).Topology
	for dname, demands := range demandSets(t, tp) {
		aInc, rInc, err := OptimalSubset(tp, demands, m, OptimalOpts{Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", dname, err)
		}
		aRef, rRef, err := OptimalSubset(tp, demands, m, OptimalOpts{Seed: 3, FullReroute: true})
		if err != nil {
			t.Fatalf("%s ref: %v", dname, err)
		}
		if !aInc.Equal(aRef) {
			t.Errorf("%s: active sets differ: inc=%v ref=%v", dname, aInc, aRef)
		}
		if !routingsEqual(rInc, rRef) {
			t.Errorf("%s: routings differ", dname)
		}
	}
}
