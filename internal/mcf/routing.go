// Package mcf implements the paper's energy-aware routing machinery
// (§2.2): the multi-commodity-flow model with element power states, an
// unsplittable-flow feasibility router, the greedy minimum-subset
// heuristic family (Chiaraviglio-style, with multi-ordering restarts
// and local search standing in for the CPLEX "optimal"), a GreenTE-like
// k-shortest-paths heuristic, and the exact MILP formulation for
// cross-checks at Figure 3 scale.
package mcf

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"response/internal/spf"
	"response/internal/topo"
	"response/internal/traffic"
)

// ErrInfeasible reports that demands cannot be routed on the active
// subgraph within capacity.
var ErrInfeasible = errors.New("mcf: demands not routable on active subgraph")

// Routing maps every (O,D) demand to a single path (the binary f
// variables of §2.2.1) and tracks the per-arc load it induces.
type Routing struct {
	Paths map[[2]topo.NodeID]topo.Path
	Load  []float64 // bits/s per arc
}

// NewRouting returns an empty routing for t.
func NewRouting(t *topo.Topology) *Routing {
	return &Routing{
		Paths: make(map[[2]topo.NodeID]topo.Path),
		Load:  make([]float64, t.NumArcs()),
	}
}

// clone returns a copy sharing the (immutable) path arc slices but
// owning its Paths map and Load vector, so the copy can be patched
// independently.
func (r *Routing) clone() *Routing {
	c := &Routing{
		Paths: make(map[[2]topo.NodeID]topo.Path, len(r.Paths)),
		Load:  append([]float64(nil), r.Load...),
	}
	for k, v := range r.Paths {
		c.Paths[k] = v
	}
	return c
}

// Path returns the path assigned to (o,d).
func (r *Routing) Path(o, d topo.NodeID) (topo.Path, bool) {
	p, ok := r.Paths[[2]topo.NodeID{o, d}]
	return p, ok
}

// Assign records p for (o,d) with the given rate, updating loads.
func (r *Routing) Assign(o, d topo.NodeID, p topo.Path, rate float64) {
	r.Paths[[2]topo.NodeID{o, d}] = p
	for _, aid := range p.Arcs {
		r.Load[aid] += rate
	}
}

// Unassign removes the (o,d) path, subtracting its load.
func (r *Routing) Unassign(o, d topo.NodeID, rate float64) {
	k := [2]topo.NodeID{o, d}
	p, ok := r.Paths[k]
	if !ok {
		return
	}
	for _, aid := range p.Arcs {
		r.Load[aid] -= rate
		if r.Load[aid] < 0 {
			r.Load[aid] = 0
		}
	}
	delete(r.Paths, k)
}

// MaxUtilization returns the maximum load/capacity over all arcs.
func (r *Routing) MaxUtilization(t *topo.Topology) float64 {
	var mx float64
	for i, l := range r.Load {
		if l == 0 {
			continue
		}
		if u := l / t.Arc(topo.ArcID(i)).Capacity; u > mx {
			mx = u
		}
	}
	return mx
}

// UsedElements returns the active set implied by the routing: every
// router and link on some assigned path, with model invariants applied.
func (r *Routing) UsedElements(t *topo.Topology) *topo.ActiveSet {
	a := topo.AllOff(t)
	for _, p := range r.Paths {
		a.ActivatePath(t, p)
	}
	return a
}

// Validate checks structural soundness: each path is simple, connects
// its (O,D) pair, and Load is consistent with the given demands.
func (r *Routing) Validate(t *topo.Topology, demands []traffic.Demand) error {
	load := make([]float64, t.NumArcs())
	for _, d := range demands {
		p, ok := r.Paths[[2]topo.NodeID{d.O, d.D}]
		if !ok {
			return fmt.Errorf("mcf: demand %d->%d unrouted", d.O, d.D)
		}
		if err := p.Check(t); err != nil {
			return fmt.Errorf("mcf: demand %d->%d: %w", d.O, d.D, err)
		}
		if p.Empty() {
			// Legal for self-demands and zero-rate placeholders.
			if d.O != d.D && d.Rate != 0 {
				return fmt.Errorf("mcf: demand %d->%d got empty path", d.O, d.D)
			}
			continue
		}
		if p.Origin(t) != d.O || p.Destination(t) != d.D {
			return fmt.Errorf("mcf: demand %d->%d path endpoints %d->%d",
				d.O, d.D, p.Origin(t), p.Destination(t))
		}
		for _, aid := range p.Arcs {
			load[aid] += d.Rate
		}
	}
	for i := range load {
		if math.Abs(load[i]-r.Load[i]) > 1e-6*(1+load[i]) {
			return fmt.Errorf("mcf: arc %d load mismatch: %.3f vs %.3f", i, r.Load[i], load[i])
		}
	}
	return nil
}

// RouteOpts parameterizes the feasibility router.
type RouteOpts struct {
	// Active restricts routing to powered elements (nil = all on).
	Active *topo.ActiveSet
	// Weight is the base arc weight (default latency).
	Weight spf.WeightFunc
	// Avoid excludes arcs (stress-factor exclusion, failures, ...).
	Avoid func(a topo.Arc) bool
	// MaxUtil caps per-arc utilization; effective capacity is
	// MaxUtil × capacity (default 1.0). This realizes the paper's
	// safety margin sm (§4.5).
	MaxUtil float64
	// LoadPenalty steers paths away from loaded arcs: the weight is
	// multiplied by (1 + LoadPenalty·util). Default 3.
	LoadPenalty float64
	// Engine selects the point-to-point path solver. Goal-directed
	// engines are certified-exact (see spf.Engine): routing results are
	// identical to the reference engine under every choice.
	Engine spf.Engine
}

func (o *RouteOpts) defaults() {
	// Weight stays nil here: loadAwareOptions special-cases the default
	// (latency) so the innermost Dijkstra loop skips one indirect call
	// per arc.
	if o.MaxUtil == 0 {
		o.MaxUtil = 1.0
	}
	if o.LoadPenalty == 0 {
		o.LoadPenalty = 3
	}
}

// RouteDemands routes every demand unsplittably on the (optionally
// restricted) subgraph, never exceeding MaxUtil per arc. Demands are
// placed largest-first (first-fit-decreasing) over a load-penalized
// shortest path, which is the classic bin-packing-style heuristic the
// literature uses for this NP-hard feasibility problem (§2.2.2).
// Because first-fit is not monotone in load, a failed pass is retried
// with stronger spreading penalties before giving up.
//
// It returns ErrInfeasible if some demand cannot be placed.
func RouteDemands(t *topo.Topology, demands []traffic.Demand, opts RouteOpts) (*Routing, error) {
	return routeDemandsSorted(t, sortDemands(demands), opts, spf.NewWorkspace())
}

// sortDemands returns the demands in first-fit-decreasing order. The
// planning loops sort once and reuse the result across every trial
// instead of re-copying and re-sorting per feasibility check.
func sortDemands(demands []traffic.Demand) []traffic.Demand {
	ordered := append([]traffic.Demand(nil), demands...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Rate > ordered[j].Rate })
	return ordered
}

// penaltyLadder is the spreading-penalty retry schedule of RouteDemands.
func penaltyLadder(base float64) [3]float64 { return [3]float64{base, base * 4, 0} }

// routeDemandsSorted is RouteDemands over a pre-sorted demand list and
// an explicit Dijkstra workspace.
func routeDemandsSorted(t *topo.Topology, sorted []traffic.Demand, opts RouteOpts, ws *spf.Workspace) (*Routing, error) {
	opts.defaults()
	ladder := penaltyLadder(opts.LoadPenalty)
	var lastErr error
	for _, penalty := range ladder {
		o := opts
		o.LoadPenalty = penalty
		r, err := routePass(t, sorted, o, ws)
		if err == nil {
			return r, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// routePass is one first-fit-decreasing placement attempt. The weight
// closure is built once per pass (not per demand) and every search runs
// through ws, so the pass allocates only the routing it returns.
func routePass(t *topo.Topology, sorted []traffic.Demand, opts RouteOpts, ws *spf.Workspace) (*Routing, error) {
	r := NewRouting(t)
	var rate float64
	so := loadAwareOptions(opts, r.Load, &rate)
	for _, d := range sorted {
		if d.O == d.D || d.Rate == 0 {
			r.Paths[[2]topo.NodeID{d.O, d.D}] = topo.Path{}
			continue
		}
		rate = d.Rate
		p, ok := ws.ShortestPath(t, d.O, d.D, so)
		if !ok || p.Empty() {
			return nil, fmt.Errorf("%w: %d->%d rate %.3g", ErrInfeasible, d.O, d.D, d.Rate)
		}
		r.Assign(d.O, d.D, p, d.Rate)
	}
	return r, nil
}

// loadAwareOptions builds the capacity-pruning, load-penalized search
// options over a live load vector; *rate selects the demand being
// placed. The same closure serves a whole pass. The default latency
// weight is inlined rather than dispatched through a WeightFunc.
func loadAwareOptions(opts RouteOpts, load []float64, rate *float64) spf.Options {
	var w spf.WeightFunc
	if base := opts.Weight; base == nil {
		w = func(a topo.Arc) float64 {
			capa := a.Capacity * opts.MaxUtil
			if load[a.ID]+*rate > capa+1e-9 {
				return math.Inf(1) // would overflow: prune
			}
			util := load[a.ID] / capa
			return a.Latency * (1 + opts.LoadPenalty*util)
		}
	} else {
		w = func(a topo.Arc) float64 {
			capa := a.Capacity * opts.MaxUtil
			if load[a.ID]+*rate > capa+1e-9 {
				return math.Inf(1) // would overflow: prune
			}
			util := load[a.ID] / capa
			return base(a) * (1 + opts.LoadPenalty*util)
		}
	}
	return spf.Options{
		Weight: w,
		Active: opts.Active,
		Avoid:  opts.Avoid,
		Engine: opts.Engine,
		// The load penalty only inflates the base weight (factor ≥ 1),
		// so with the default latency base the landmark latency bounds
		// stay admissible.
		LatencyBound: opts.Weight == nil,
	}
}

// Feasible reports whether all demands fit on the active subgraph.
func Feasible(t *topo.Topology, demands []traffic.Demand, opts RouteOpts) bool {
	_, err := RouteDemands(t, demands, opts)
	return err == nil
}

// RouteOnPaths routes each demand on a fixed per-OD path choice
// (installed tables), checking capacity. Used to evaluate precomputed
// REsPoNse tables against a matrix without re-optimizing.
func RouteOnPaths(t *topo.Topology, demands []traffic.Demand,
	choose func(o, d topo.NodeID) topo.Path, maxUtil float64) (*Routing, error) {
	if maxUtil == 0 {
		maxUtil = 1.0
	}
	r := NewRouting(t)
	for _, d := range demands {
		if d.O == d.D || d.Rate == 0 {
			continue
		}
		p := choose(d.O, d.D)
		if p.Empty() {
			return nil, fmt.Errorf("%w: no installed path %d->%d", ErrInfeasible, d.O, d.D)
		}
		r.Assign(d.O, d.D, p, d.Rate)
	}
	for _, a := range t.Arcs() {
		if r.Load[a.ID] > a.Capacity*maxUtil+1e-6 {
			return r, fmt.Errorf("%w: arc %d overloaded (%.3g > %.3g)",
				ErrInfeasible, a.ID, r.Load[a.ID], a.Capacity*maxUtil)
		}
	}
	return r, nil
}
