package mcf

import (
	"fmt"
	"math/rand"
	"sort"

	"response/internal/power"
	"response/internal/topo"
	"response/internal/traffic"
)

// Order selects the element ordering of the greedy switch-off loop.
type Order int

// Greedy orderings. PowerDesc is the Chiaraviglio et al. heuristic:
// try to power off the most power-hungry devices first.
const (
	PowerDesc Order = iota
	PowerAsc
	DegreeAsc
	Random
)

// GreedyOpts parameterizes GreedyMinSubset.
type GreedyOpts struct {
	Order Order
	// Seed drives the Random order.
	Seed int64
	// KeepOn pins elements on (e.g. always-on elements when computing
	// on-demand paths with X,Y carried over — §4.2).
	KeepOn *topo.ActiveSet
	// Route configures feasibility checks.
	Route RouteOpts
	// Check, when non-nil, vets each candidate routing beyond capacity
	// (e.g. the REsPoNse-lat delay bound, §4.1 constraint 4); a
	// non-nil error keeps the tried element powered.
	Check func(*Routing) error
}

// GreedyMinSubset computes a minimal (w.r.t. inclusion) set of network
// elements that can carry the demands, in the style of Chiaraviglio et
// al.: starting from the full network, repeatedly power off the next
// candidate element and keep it off if the demands still route.
//
// It returns the active set (with model invariants enforced) and the
// routing found on it.
func GreedyMinSubset(t *topo.Topology, demands []traffic.Demand, m power.Model,
	opts GreedyOpts) (*topo.ActiveSet, *Routing, error) {

	active := topo.AllOn(t)
	ro := opts.Route
	ro.Active = active
	routing, err := RouteDemands(t, demands, ro)
	if err != nil {
		return nil, nil, err
	}
	if opts.Check != nil {
		if err := opts.Check(routing); err != nil {
			return nil, nil, fmt.Errorf("mcf: baseline routing rejected: %w", err)
		}
	}

	// Candidate elements: routers then links, in the chosen order.
	type cand struct {
		isRouter bool
		router   topo.NodeID
		link     topo.LinkID
		watts    float64
		degree   int
	}
	var cands []cand
	for _, n := range t.Nodes() {
		if n.Kind == topo.KindHost {
			continue
		}
		if opts.KeepOn != nil && opts.KeepOn.Router[n.ID] {
			continue
		}
		w := m.ChassisWatts(n)
		for _, aid := range t.Out(n.ID) {
			w += m.PortWatts(n, t.Arc(aid))
		}
		cands = append(cands, cand{isRouter: true, router: n.ID, watts: w, degree: t.Degree(n.ID)})
	}
	for _, l := range t.Links() {
		if opts.KeepOn != nil && opts.KeepOn.Link[l.ID] {
			continue
		}
		w := m.PortWatts(t.Node(l.A), t.Arc(l.AB)) +
			m.PortWatts(t.Node(l.B), t.Arc(l.BA)) + 2*m.AmpWatts(l)
		cands = append(cands, cand{isRouter: false, link: l.ID, watts: w})
	}
	switch opts.Order {
	case PowerDesc:
		sort.SliceStable(cands, func(i, j int) bool { return cands[i].watts > cands[j].watts })
	case PowerAsc:
		sort.SliceStable(cands, func(i, j int) bool { return cands[i].watts < cands[j].watts })
	case DegreeAsc:
		sort.SliceStable(cands, func(i, j int) bool {
			if cands[i].isRouter != cands[j].isRouter {
				return cands[i].isRouter // routers first
			}
			return cands[i].degree < cands[j].degree
		})
	case Random:
		rng := rand.New(rand.NewSource(opts.Seed))
		rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	}

	for _, c := range cands {
		trial := active.Clone()
		if c.isRouter {
			if !trial.Router[c.router] {
				continue
			}
			trial.Router[c.router] = false
		} else {
			if !trial.Link[c.link] {
				continue
			}
			trial.Link[c.link] = false
		}
		trial.EnforceInvariants(t)
		if violatesKeepOn(trial, opts.KeepOn) {
			continue
		}
		ro.Active = trial
		r, err := RouteDemands(t, demands, ro)
		if err != nil {
			continue // must stay on
		}
		if opts.Check != nil && opts.Check(r) != nil {
			continue // violates the caller's constraint (e.g. delay bound)
		}
		active = trial
		routing = r
	}
	// Drop elements the final routing does not touch (constraint 3
	// tightening): an on element carrying nothing can sleep unless
	// pinned.
	trimIdle(t, active, routing, opts.KeepOn)
	return active, routing, nil
}

func violatesKeepOn(a, keep *topo.ActiveSet) bool {
	if keep == nil {
		return false
	}
	for i, on := range keep.Router {
		if on && !a.Router[i] {
			return true
		}
	}
	for i, on := range keep.Link {
		if on && !a.Link[i] {
			return true
		}
	}
	return false
}

// trimIdle powers off active elements that carry no traffic and are not
// pinned, then re-enforces invariants.
func trimIdle(t *topo.Topology, active *topo.ActiveSet, r *Routing, keep *topo.ActiveSet) {
	used := r.UsedElements(t)
	for _, l := range t.Links() {
		if active.Link[l.ID] && !used.Link[l.ID] && (keep == nil || !keep.Link[l.ID]) {
			active.Link[l.ID] = false
		}
	}
	for _, n := range t.Nodes() {
		if n.Kind == topo.KindHost {
			continue
		}
		if active.Router[n.ID] && !used.Router[n.ID] && (keep == nil || !keep.Router[n.ID]) {
			active.Router[n.ID] = false
		}
	}
	active.EnforceInvariants(t)
	// Sources and destinations must stay on even if EnforceInvariants
	// would drop isolated routers; re-activate endpoints of paths.
	for _, p := range r.Paths {
		active.ActivatePath(t, p)
	}
}

// OptimalOpts parameterizes the multi-restart "optimal" stand-in.
type OptimalOpts struct {
	// RandomRestarts adds this many random-order greedy runs to the
	// deterministic orderings (default 4).
	RandomRestarts int
	Seed           int64
	KeepOn         *topo.ActiveSet
	Route          RouteOpts
	// Check is forwarded to every greedy run (see GreedyOpts.Check).
	Check func(*Routing) error
}

// OptimalSubset approximates the paper's CPLEX-computed minimum network
// subset by taking the best (lowest-power) result across greedy runs
// with several element orderings plus random restarts, followed by a
// local-search pass. DESIGN.md §3 documents this substitution; tests
// cross-check it against the exact MILP on small instances.
func OptimalSubset(t *topo.Topology, demands []traffic.Demand, m power.Model,
	opts OptimalOpts) (*topo.ActiveSet, *Routing, error) {

	if opts.RandomRestarts == 0 {
		opts.RandomRestarts = 4
	}
	type result struct {
		active  *topo.ActiveSet
		routing *Routing
		watts   float64
	}
	var best *result
	try := func(g GreedyOpts) error {
		a, r, err := GreedyMinSubset(t, demands, m, g)
		if err != nil {
			return err
		}
		w := power.NetworkWatts(t, m, a)
		if best == nil || w < best.watts {
			best = &result{active: a, routing: r, watts: w}
		}
		return nil
	}
	base := GreedyOpts{KeepOn: opts.KeepOn, Route: opts.Route, Check: opts.Check}
	for _, ord := range []Order{PowerDesc, DegreeAsc, PowerAsc} {
		g := base
		g.Order = ord
		if err := try(g); err != nil {
			return nil, nil, err
		}
	}
	for i := 0; i < opts.RandomRestarts; i++ {
		g := base
		g.Order = Random
		g.Seed = opts.Seed + int64(i)*7919
		if err := try(g); err != nil {
			return nil, nil, err
		}
	}
	return best.active, best.routing, nil
}
