package mcf

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"response/internal/power"
	"response/internal/spf"
	"response/internal/topo"
	"response/internal/traffic"
)

// Order selects the element ordering of the greedy switch-off loop.
type Order int

// Greedy orderings. PowerDesc is the Chiaraviglio et al. heuristic:
// try to power off the most power-hungry devices first.
const (
	PowerDesc Order = iota
	PowerAsc
	DegreeAsc
	Random
)

// GreedyOpts parameterizes GreedyMinSubset.
type GreedyOpts struct {
	Order Order
	// Seed drives the Random order.
	Seed int64
	// KeepOn pins elements on (e.g. always-on elements when computing
	// on-demand paths with X,Y carried over — §4.2).
	KeepOn *topo.ActiveSet
	// Route configures feasibility checks.
	Route RouteOpts
	// Check, when non-nil, vets each candidate routing beyond capacity
	// (e.g. the REsPoNse-lat delay bound, §4.1 constraint 4); a
	// non-nil error keeps the tried element powered. Because Check must
	// see the exact routing a from-scratch solve would produce, setting
	// it disables delta-rerouting (every trial is a full reroute).
	Check func(*Routing) error
	// FullReroute disables the incremental delta-rerouting fast path
	// and evaluates every switch-off candidate with a from-scratch
	// feasibility solve, as the original implementation did. It is the
	// reference mode the equivalence tests compare against.
	FullReroute bool
}

// GreedyMinSubset computes a minimal (w.r.t. inclusion) set of network
// elements that can carry the demands, in the style of Chiaraviglio et
// al.: starting from the full network, repeatedly power off the next
// candidate element and keep it off if the demands still route.
//
// In the capacity-slack regime (see capacitySlack — it covers the
// paper's ε-demand always-on computation), candidate evaluation is
// incremental: per-link residual loads and a link→demands index are
// maintained so that switching an element off reroutes only the
// demands whose current paths traverse it, against the residual
// network, and the final routing is recomputed once on the final
// active set. The verdicts are provably identical to the from-scratch
// reference (GreedyOpts.FullReroute), so the results match
// bit-for-bit. When capacity binds, feasibility genuinely depends on
// global repacking and every trial runs the full solve, as the
// reference does.
//
// It returns the active set (with model invariants enforced) and the
// routing found on it.
func GreedyMinSubset(t *topo.Topology, demands []traffic.Demand, m power.Model,
	opts GreedyOpts) (*topo.ActiveSet, *Routing, error) {
	return greedyMinSubset(context.Background(), t, sortDemands(demands), m, opts,
		spf.NewWorkspace(), nil)
}

// greedyMinSubset is GreedyMinSubset over pre-sorted demands and an
// explicit workspace, shared by the parallel restarts of OptimalSubset.
// baseline, when non-nil, is the full-network routing of the demands
// (identical for every restart, so OptimalSubset solves it once); the
// run takes a private copy before mutating it. A canceled ctx aborts
// between candidate trials with ctx.Err().
func greedyMinSubset(ctx context.Context, t *topo.Topology, sorted []traffic.Demand, m power.Model,
	opts GreedyOpts, ws *spf.Workspace, baseline *Routing) (*topo.ActiveSet, *Routing, error) {

	ro := opts.Route
	ro.defaults()
	s := &subsetSearch{
		t: t, sorted: sorted, m: m, ro: ro,
		keepOn: opts.KeepOn, check: opts.Check, fullReroute: opts.FullReroute,
	}
	active := topo.AllOn(t)
	ro.Active = active
	var routing *Routing
	if baseline != nil {
		routing = baseline.clone()
	} else {
		var err error
		routing, err = routeDemandsSorted(t, sorted, ro, ws)
		if err != nil {
			return nil, nil, err
		}
	}
	if opts.Check != nil {
		if err := opts.Check(routing); err != nil {
			return nil, nil, fmt.Errorf("mcf: baseline routing rejected: %w", err)
		}
	}
	cands := s.candidates()
	orderCands(cands, opts.Order, opts.Seed)
	return s.descend(ctx, active, cands, ws, routing, true)
}

// capacitySlack reports whether no arc can ever hit its capacity cap
// while routing these demands: the sum of all rates fits on the
// thinnest arc. In this regime — which covers the paper's ε-demand
// always-on computation (§4.1) — the feasibility router never prunes
// an arc, so a demand set routes if and only if every pair is
// connected on the active subgraph. That makes the delta verdicts
// below provably identical to the from-scratch reference's.
func capacitySlack(t *topo.Topology, demands []traffic.Demand, maxUtil float64) bool {
	var sum float64
	for _, d := range demands {
		if d.O != d.D {
			sum += d.Rate
		}
	}
	for _, a := range t.Arcs() {
		if sum > a.Capacity*maxUtil {
			return false
		}
	}
	return true
}

// deltaRouter maintains the incremental state of the greedy loop: the
// current routing (with its per-arc residual loads) and, per link, the
// indices of the demands whose current path traverses it. Switching an
// element off reroutes only the affected demands against the residual
// network instead of re-solving the whole multi-commodity problem.
type deltaRouter struct {
	sorted  []traffic.Demand
	routing *Routing
	byLink  [][]int32 // per LinkID: indices into sorted, unordered
	mark    []bool    // per demand index: scratch for dedup
	scratch []int32   // affected-demand collection buffer
}

func newDeltaRouter(t *topo.Topology, sorted []traffic.Demand, r *Routing) *deltaRouter {
	d := &deltaRouter{
		sorted: sorted,
		byLink: make([][]int32, t.NumLinks()),
		mark:   make([]bool, len(sorted)),
	}
	d.adopt(t, r)
	return d
}

// adopt replaces the current routing wholesale and rebuilds the index.
func (dr *deltaRouter) adopt(t *topo.Topology, r *Routing) {
	dr.routing = r
	for l := range dr.byLink {
		dr.byLink[l] = dr.byLink[l][:0]
	}
	for i, d := range dr.sorted {
		if p, ok := r.Paths[[2]topo.NodeID{d.O, d.D}]; ok {
			dr.index(t, int32(i), p)
		}
	}
}

// index adds demand di to the per-link lists of p.
func (dr *deltaRouter) index(t *topo.Topology, di int32, p topo.Path) {
	for _, aid := range p.Arcs {
		l := t.Arc(aid).Link
		dr.byLink[l] = append(dr.byLink[l], di)
	}
}

// unindex removes demand di from the per-link lists of p.
func (dr *deltaRouter) unindex(t *topo.Topology, di int32, p topo.Path) {
	for _, aid := range p.Arcs {
		l := t.Arc(aid).Link
		list := dr.byLink[l]
		for k, v := range list {
			if v == di {
				list[k] = list[len(list)-1]
				dr.byLink[l] = list[:len(list)-1]
				break
			}
		}
	}
}

// try evaluates one switch-off trial in the capacity-slack regime.
// active is the current accepted set, trial the candidate set
// (invariants enforced); ro.Active must already point at trial. It
// reports whether the trial is feasible; on success the internal
// routing has been patched in place, on failure all state is rolled
// back.
//
// Exactness: with capacity slack the router never prunes an arc, so
// the from-scratch reference succeeds iff every demand pair is
// connected on trial. Unaffected pairs are connected (their current
// paths avoid the removed elements), so routing just the affected
// pairs decides the identical verdict at a fraction of the cost — and
// a single placement pass suffices, because the spreading-penalty
// ladder can only change which path is found, never whether one is.
func (dr *deltaRouter) try(t *topo.Topology, active, trial *topo.ActiveSet,
	ro RouteOpts, ws *spf.Workspace) bool {

	// Demands affected by the elements this trial powers off. A router
	// removal also removes all its incident links (invariant 1), so the
	// link diff covers every traversal and endpoint case.
	affected := dr.scratch[:0]
	for l := range dr.byLink {
		if active.Link[l] && !trial.Link[l] {
			for _, di := range dr.byLink[l] {
				if !dr.mark[di] {
					dr.mark[di] = true
					affected = append(affected, di)
				}
			}
		}
	}
	dr.scratch = affected
	for _, di := range affected {
		dr.mark[di] = false
	}
	if len(affected) == 0 {
		// No current path touches the removed elements: the routing is
		// already feasible on the trial set. Accept for free.
		return true
	}
	// Reroute in first-fit-decreasing order (sorted is FFD-ordered, so
	// ascending index order is largest-first).
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })

	// Tear the affected demands out, remembering their paths for rollback.
	saved := make([]topo.Path, len(affected))
	for k, di := range affected {
		d := dr.sorted[di]
		key := [2]topo.NodeID{d.O, d.D}
		saved[k] = dr.routing.Paths[key]
		dr.routing.Unassign(d.O, d.D, d.Rate)
	}

	// Place them against the residual network.
	var rate float64
	so := loadAwareOptions(ro, dr.routing.Load, &rate)
	placed := 0
	ok := true
	for _, di := range affected {
		d := dr.sorted[di]
		rate = d.Rate
		p, found := ws.ShortestPath(t, d.O, d.D, so)
		if !found || p.Empty() {
			ok = false
			break
		}
		dr.routing.Assign(d.O, d.D, p, d.Rate)
		placed++
	}
	if ok {
		// Commit: swap the index entries over to the new paths.
		for k, di := range affected {
			d := dr.sorted[di]
			dr.unindex(t, di, saved[k])
			p := dr.routing.Paths[[2]topo.NodeID{d.O, d.D}]
			dr.index(t, di, p)
		}
		return true
	}
	// Some affected pair is disconnected on trial, so the reference
	// solve would fail too: reject without a fallback, restoring the
	// original assignments.
	for k := 0; k < placed; k++ {
		d := dr.sorted[affected[k]]
		dr.routing.Unassign(d.O, d.D, d.Rate)
	}
	for k, di := range affected {
		d := dr.sorted[di]
		dr.routing.Assign(d.O, d.D, saved[k], d.Rate)
	}
	return false
}

func violatesKeepOn(a, keep *topo.ActiveSet) bool {
	if keep == nil {
		return false
	}
	for i, on := range keep.Router {
		if on && !a.Router[i] {
			return true
		}
	}
	for i, on := range keep.Link {
		if on && !a.Link[i] {
			return true
		}
	}
	return false
}

// trimIdle powers off active elements that carry no traffic and are not
// pinned, then re-enforces invariants.
func trimIdle(t *topo.Topology, active *topo.ActiveSet, r *Routing, keep *topo.ActiveSet) {
	used := r.UsedElements(t)
	for _, l := range t.Links() {
		if active.Link[l.ID] && !used.Link[l.ID] && (keep == nil || !keep.Link[l.ID]) {
			active.Link[l.ID] = false
		}
	}
	for _, n := range t.Nodes() {
		if n.Kind == topo.KindHost {
			continue
		}
		if active.Router[n.ID] && !used.Router[n.ID] && (keep == nil || !keep.Router[n.ID]) {
			active.Router[n.ID] = false
		}
	}
	active.EnforceInvariants(t)
	// Sources and destinations must stay on even if EnforceInvariants
	// would drop isolated routers; re-activate endpoints of paths.
	for _, p := range r.Paths {
		active.ActivatePath(t, p)
	}
}

// OptimalOpts parameterizes the multi-restart "optimal" stand-in.
type OptimalOpts struct {
	// RandomRestarts adds this many random-order greedy runs to the
	// deterministic orderings (default 4; a negative value runs only
	// the deterministic orderings).
	RandomRestarts int
	Seed           int64
	KeepOn         *topo.ActiveSet
	Route          RouteOpts
	// Check is forwarded to every greedy run (see GreedyOpts.Check).
	Check func(*Routing) error
	// FullReroute is forwarded to every greedy run (see GreedyOpts).
	FullReroute bool
	// Warm, when non-nil, seeds the search from a previous result: a
	// single descent starts from the warm element set (repaired to
	// feasibility if needed) with candidates tried in ascending
	// energy-criticality order and hopeless bridges pruned. When the
	// descended result lands within Warm.Tolerance of the seed's power
	// the restart pool is skipped entirely — the early termination that
	// makes replans incremental. A seed that cannot be repaired, fails
	// Check, or misses the tolerance falls back to the cold
	// multi-restart search below, so Warm never changes what is
	// achievable, only how fast it is reached.
	Warm *WarmStart
}

// OptimalSubset approximates the paper's CPLEX-computed minimum network
// subset by taking the best (lowest-power) result across greedy runs
// with several element orderings plus random restarts. DESIGN.md §2
// documents this substitution; tests cross-check it against the exact
// MILP on small instances.
//
// The runs execute concurrently on a bounded worker pool (one
// goroutine per processor), each with its own Dijkstra workspace. The
// winner is selected deterministically — strictly lower power wins,
// ties go to the earlier run in the fixed ordering sequence — so the
// result is identical regardless of GOMAXPROCS or scheduling.
func OptimalSubset(t *topo.Topology, demands []traffic.Demand, m power.Model,
	opts OptimalOpts) (*topo.ActiveSet, *Routing, error) {
	return OptimalSubsetContext(context.Background(), t, demands, m, opts)
}

// OptimalSubsetContext is OptimalSubset with cancellation. The restart
// dispatch selects on ctx.Done, every in-flight greedy run aborts
// between candidate trials, and cancellation always returns the same
// error — ctx.Err() — regardless of which run observed it first, so the
// early return is deterministic. No worker goroutine outlives the call.
func OptimalSubsetContext(ctx context.Context, t *topo.Topology, demands []traffic.Demand,
	m power.Model, opts OptimalOpts) (*topo.ActiveSet, *Routing, error) {

	if opts.RandomRestarts == 0 {
		opts.RandomRestarts = 4
	}
	if opts.Warm != nil && opts.Warm.Active != nil {
		a, r, ok, err := warmSubset(ctx, t, sortDemands(demands), m, opts)
		if err != nil {
			return nil, nil, fmt.Errorf("mcf: optimal subset: %w", err)
		}
		if ok {
			return a, r, nil
		}
	}
	base := GreedyOpts{KeepOn: opts.KeepOn, Route: opts.Route, Check: opts.Check,
		FullReroute: opts.FullReroute}
	var runs []GreedyOpts
	for _, ord := range []Order{PowerDesc, DegreeAsc, PowerAsc} {
		g := base
		g.Order = ord
		runs = append(runs, g)
	}
	for i := 0; i < opts.RandomRestarts; i++ {
		g := base
		g.Order = Random
		g.Seed = opts.Seed + int64(i)*7919
		runs = append(runs, g)
	}

	sorted := sortDemands(demands) // shared, read-only across runs
	// Every restart starts from the same full-network routing; solve it
	// once and let each run clone it (path slices are never mutated in
	// place, so sharing them across goroutines is safe).
	ro := opts.Route
	ro.defaults()
	ro.Active = topo.AllOn(t)
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("mcf: optimal subset: %w", err)
	}
	baseline, err := routeDemandsSorted(t, sorted, ro, spf.NewWorkspace())
	if err != nil {
		return nil, nil, err
	}
	type result struct {
		active  *topo.ActiveSet
		routing *Routing
		watts   float64
		err     error
	}
	results := make([]result, len(runs))
	runOne := func(i int) {
		a, r, err := greedyMinSubset(ctx, t, sorted, m, runs[i], spf.NewWorkspace(), baseline)
		if err != nil {
			results[i].err = err
			return
		}
		results[i] = result{active: a, routing: r, watts: power.NetworkWatts(t, m, a)}
	}
	if workers := min(runtime.GOMAXPROCS(0), len(runs)); workers <= 1 {
		for i := range runs {
			if ctx.Err() != nil {
				break
			}
			runOne(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					runOne(i)
				}
			}()
		}
	dispatch:
		for i := range runs {
			select {
			case next <- i:
			case <-ctx.Done():
				break dispatch
			}
		}
		close(next)
		wg.Wait()
	}

	// Deterministic early return on cancellation: whatever subset of
	// runs completed (or aborted mid-loop), the caller always sees the
	// context's own error.
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("mcf: optimal subset: %w", err)
	}

	// Deterministic selection: first error in run order aborts (as the
	// sequential implementation did); otherwise strictly lower power
	// wins and ties keep the earliest run.
	var best *result
	for i := range results {
		if results[i].err != nil {
			return nil, nil, results[i].err
		}
		if best == nil || results[i].watts < best.watts {
			best = &results[i]
		}
	}
	return best.active, best.routing, nil
}
