package mcf

import (
	"fmt"
	"sort"

	"response/internal/power"
	"response/internal/spf"
	"response/internal/topo"
	"response/internal/traffic"
)

// KShortOpts parameterizes the GreenTE-style heuristic (§2.3, Zhang et
// al.): restrict each (O,D) pair to its k shortest paths and pack
// demands so as to minimize incrementally activated power.
type KShortOpts struct {
	// K is the candidate path budget per pair (default 5, GreenTE's
	// published sweet spot).
	K int
	// KeepOn pins elements on before packing starts.
	KeepOn *topo.ActiveSet
	// MaxUtil caps per-arc utilization (default 1.0).
	MaxUtil float64
	// Paths, when non-nil, supplies precomputed candidates (keyed by
	// [O,D]); otherwise Yen's algorithm runs per pair.
	Paths map[[2]topo.NodeID][]topo.Path
	// Engine selects the path solver for the Yen runs (certified-exact;
	// see spf.Engine).
	Engine spf.Engine
}

// CandidatePaths precomputes the k shortest latency paths for every
// demand pair; heavy topologies (large fat-trees) should compute this
// once and reuse it across intervals.
func CandidatePaths(t *topo.Topology, demands []traffic.Demand, k int) map[[2]topo.NodeID][]topo.Path {
	return CandidatePathsEngine(t, demands, k, spf.EngineReference)
}

// CandidatePathsEngine is CandidatePaths through a selectable path
// engine. All engines return identical candidates (the goal-directed
// ones are certified-exact); the choice only changes how fast the Yen
// runs go. A single workspace is reused across pairs so the engine's
// landmark and adaptive-bailout state carries over.
func CandidatePathsEngine(t *topo.Topology, demands []traffic.Demand, k int, eng spf.Engine) map[[2]topo.NodeID][]topo.Path {
	out := make(map[[2]topo.NodeID][]topo.Path)
	ws := spf.NewWorkspace()
	opts := spf.Options{Engine: eng}
	for _, d := range demands {
		key := [2]topo.NodeID{d.O, d.D}
		if _, done := out[key]; done || d.O == d.D {
			continue
		}
		out[key] = ws.KShortest(t, d.O, d.D, k, opts)
	}
	return out
}

// KShortestSubset packs demands (largest first) onto each pair's k
// shortest paths, choosing for every demand the candidate that
// minimizes newly-activated power (ties: lowest resulting utilization).
// Elements never touched stay off.
func KShortestSubset(t *topo.Topology, demands []traffic.Demand, m power.Model,
	opts KShortOpts) (*topo.ActiveSet, *Routing, error) {

	if opts.K == 0 {
		opts.K = 5
	}
	if opts.MaxUtil == 0 {
		opts.MaxUtil = 1.0
	}
	cands := opts.Paths
	if cands == nil {
		cands = CandidatePathsEngine(t, demands, opts.K, opts.Engine)
	}
	active := topo.AllOff(t)
	if opts.KeepOn != nil {
		active.Union(opts.KeepOn)
	}
	r := NewRouting(t)
	ordered := append([]traffic.Demand(nil), demands...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Rate > ordered[j].Rate })

	for _, d := range ordered {
		if d.O == d.D || d.Rate == 0 {
			continue
		}
		key := [2]topo.NodeID{d.O, d.D}
		paths := cands[key]
		if len(paths) == 0 {
			return nil, nil, fmt.Errorf("%w: no candidate path %d->%d", ErrInfeasible, d.O, d.D)
		}
		bestIdx := -1
		var bestCost, bestUtil float64
		for i, p := range paths {
			if overflows(t, r.Load, p, d.Rate, opts.MaxUtil) {
				continue
			}
			cost := incrementalWatts(t, m, active, p)
			util := worstUtilAfter(t, r.Load, p, d.Rate)
			if bestIdx < 0 || cost < bestCost-1e-9 ||
				(cost < bestCost+1e-9 && util < bestUtil) {
				bestIdx, bestCost, bestUtil = i, cost, util
			}
		}
		if bestIdx < 0 {
			return nil, nil, fmt.Errorf("%w: %d->%d rate %.3g (k=%d)",
				ErrInfeasible, d.O, d.D, d.Rate, opts.K)
		}
		p := paths[bestIdx]
		r.Assign(d.O, d.D, p, d.Rate)
		active.ActivatePath(t, p)
	}
	return active, r, nil
}

func overflows(t *topo.Topology, load []float64, p topo.Path, rate, maxUtil float64) bool {
	for _, aid := range p.Arcs {
		if load[aid]+rate > t.Arc(aid).Capacity*maxUtil+1e-9 {
			return true
		}
	}
	return false
}

func worstUtilAfter(t *topo.Topology, load []float64, p topo.Path, rate float64) float64 {
	var mx float64
	for _, aid := range p.Arcs {
		u := (load[aid] + rate) / t.Arc(aid).Capacity
		if u > mx {
			mx = u
		}
	}
	return mx
}

// incrementalWatts prices the elements p would newly activate.
func incrementalWatts(t *topo.Topology, m power.Model, active *topo.ActiveSet, p topo.Path) float64 {
	var w float64
	seenLink := make(map[topo.LinkID]bool, len(p.Arcs))
	touch := func(n topo.NodeID) {
		node := t.Node(n)
		if node.Kind != topo.KindHost && !active.Router[n] {
			w += m.ChassisWatts(node)
		}
	}
	if !p.Empty() {
		touch(p.Origin(t))
	}
	for _, aid := range p.Arcs {
		a := t.Arc(aid)
		touch(a.To)
		if !active.Link[a.Link] && !seenLink[a.Link] {
			seenLink[a.Link] = true
			l := t.Link(a.Link)
			w += m.PortWatts(t.Node(l.A), t.Arc(l.AB)) +
				m.PortWatts(t.Node(l.B), t.Arc(l.BA)) + 2*m.AmpWatts(l)
		}
	}
	return w
}

// MaxFeasibleScale finds the largest multiplier s such that base scaled
// by s still routes on the full topology — the paper's procedure for
// marking the 100 % load point (§5.1: "incrementally increasing the
// traffic demand by 10 % up to a point where CPLEX cannot find a
// routing"). A 10 % grid walk is refined by bisection to tol.
func MaxFeasibleScale(t *topo.Topology, base *traffic.Matrix, opts RouteOpts, tol float64) float64 {
	if tol <= 0 {
		tol = 0.01
	}
	// The probe loop below runs dozens of feasibility solves; sort the
	// demands once (scaling by s > 0 preserves the first-fit-decreasing
	// order) and reuse one workspace and one scaled buffer throughout.
	demands := sortDemands(base.Demands())
	scaled := make([]traffic.Demand, len(demands))
	ws := spf.NewWorkspace()
	feasible := func(s float64) bool {
		for i, d := range demands {
			scaled[i] = traffic.Demand{O: d.O, D: d.D, Rate: d.Rate * s}
		}
		_, err := routeDemandsSorted(t, scaled, opts, ws)
		return err == nil
	}
	if !feasible(1e-9) {
		return 0
	}
	lo := 0.0
	hi := 1.0
	// Grow until infeasible. The cap is a pure runaway guard: the
	// scale is a dimensionless multiplier and bases expressed in
	// bits/s against multi-Gb/s networks legitimately need 1e10+.
	for feasible(hi) {
		lo = hi
		hi *= 2
		if hi > 1e18 {
			return lo
		}
	}
	// Tighten with a 10% grid inside [lo, hi] (the paper's procedure),
	// then bisect. Skipped when lo is zero (nothing to grid from).
	if lo > 0 {
		for step := lo * 1.1; step < hi && feasible(step); step *= 1.1 {
			lo = step
		}
	}
	for hi-lo > tol*lo {
		mid := (lo + hi) / 2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
