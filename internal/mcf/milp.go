package mcf

import (
	"fmt"
	"math"

	"response/internal/lp"
	"response/internal/power"
	"response/internal/topo"
	"response/internal/traffic"
)

// MILP is the exact formulation of §2.2.1 built over the lp package:
//
//	min Σ_i X_i·Pc(i) + Σ_l Y_l·(Pl(A)+Pl(B)+2·Pa)
//	s.t. flow conservation per demand,
//	     Σ_od d_od·f_od,a ≤ C_a·Y_link(a)   (constraint 2)
//	     Y_l ≤ X_A, Y_l ≤ X_B               (constraint 1)
//	     X_i ≤ Σ_{l ∋ i} Y_l                (constraint 3)
//
// with X, Y and f binary. It is tractable only at Figure 3 scale and
// exists to certify the heuristics (see DESIGN.md §2).
type MILP struct {
	Problem *lp.Problem
	X       map[topo.NodeID]lp.VarID
	Y       map[topo.LinkID]lp.VarID
	F       map[flowKey]lp.VarID
	topo    *topo.Topology
	demands []traffic.Demand
}

type flowKey struct {
	o, d topo.NodeID
	arc  topo.ArcID
}

// MILPOpts tunes the exact model.
type MILPOpts struct {
	// MaxUtil caps per-arc utilization (default 1.0).
	MaxUtil float64
	// KeepOn forces elements on (fixes X/Y to 1), the §4.2 carry-over.
	KeepOn *topo.ActiveSet
	// Relax builds the LP relaxation (no integrality marks), giving a
	// power lower bound.
	Relax bool
}

// BuildMILP assembles the exact model for the given demands.
func BuildMILP(t *topo.Topology, demands []traffic.Demand, m power.Model, opts MILPOpts) *MILP {
	if opts.MaxUtil == 0 {
		opts.MaxUtil = 1.0
	}
	p := lp.NewProblem()
	mi := &MILP{
		Problem: p,
		X:       make(map[topo.NodeID]lp.VarID),
		Y:       make(map[topo.LinkID]lp.VarID),
		F:       make(map[flowKey]lp.VarID),
		topo:    t,
		demands: demands,
	}
	mkBin := func(name string, obj float64, forceOn bool) lp.VarID {
		lo := 0.0
		if forceOn {
			lo = 1.0
		}
		v := p.AddVar(name, lo, 1, obj)
		if !opts.Relax {
			p.SetInteger(v)
		}
		return v
	}
	for _, n := range t.Nodes() {
		if n.Kind == topo.KindHost {
			continue
		}
		force := opts.KeepOn != nil && opts.KeepOn.Router[n.ID]
		mi.X[n.ID] = mkBin(fmt.Sprintf("X_%s", n.Name), m.ChassisWatts(n), force)
	}
	for _, l := range t.Links() {
		w := m.PortWatts(t.Node(l.A), t.Arc(l.AB)) +
			m.PortWatts(t.Node(l.B), t.Arc(l.BA)) + 2*m.AmpWatts(l)
		force := opts.KeepOn != nil && opts.KeepOn.Link[l.ID]
		mi.Y[l.ID] = mkBin(fmt.Sprintf("Y_%d", l.ID), w, force)
	}
	// Flow variables (binary single-path routing).
	for _, d := range demands {
		if d.O == d.D || d.Rate == 0 {
			continue
		}
		for _, a := range t.Arcs() {
			v := p.AddVar(fmt.Sprintf("f_%d_%d_a%d", d.O, d.D, a.ID), 0, 1, 0)
			if !opts.Relax {
				p.SetInteger(v)
			}
			mi.F[flowKey{d.O, d.D, a.ID}] = v
		}
	}
	// Flow conservation.
	for _, d := range demands {
		if d.O == d.D || d.Rate == 0 {
			continue
		}
		for _, n := range t.Nodes() {
			var terms []lp.Term
			for _, aid := range t.Out(n.ID) {
				terms = append(terms, lp.Term{Var: mi.F[flowKey{d.O, d.D, aid}], Coef: 1})
			}
			for _, aid := range t.In(n.ID) {
				terms = append(terms, lp.Term{Var: mi.F[flowKey{d.O, d.D, aid}], Coef: -1})
			}
			rhs := 0.0
			switch n.ID {
			case d.O:
				rhs = 1
			case d.D:
				rhs = -1
			}
			p.AddConstraint(fmt.Sprintf("fc_%d_%d_n%d", d.O, d.D, n.ID), terms, lp.EQ, rhs)
		}
	}
	// Capacity with link activation (constraint 2).
	for _, a := range t.Arcs() {
		var terms []lp.Term
		for _, d := range demands {
			if d.O == d.D || d.Rate == 0 {
				continue
			}
			terms = append(terms, lp.Term{Var: mi.F[flowKey{d.O, d.D, a.ID}], Coef: d.Rate})
		}
		terms = append(terms, lp.Term{Var: mi.Y[a.Link], Coef: -a.Capacity * opts.MaxUtil})
		p.AddConstraint(fmt.Sprintf("cap_a%d", a.ID), terms, lp.LE, 0)
	}
	// Constraint 1: link implies both routers on.
	for _, l := range t.Links() {
		for _, end := range []topo.NodeID{l.A, l.B} {
			if t.Node(end).Kind == topo.KindHost {
				continue
			}
			p.AddConstraint(fmt.Sprintf("lr_%d_%d", l.ID, end),
				[]lp.Term{{Var: mi.Y[l.ID], Coef: 1}, {Var: mi.X[end], Coef: -1}}, lp.LE, 0)
		}
	}
	// Constraint 3: router off when all its links are off.
	for _, n := range t.Nodes() {
		if n.Kind == topo.KindHost {
			continue
		}
		terms := []lp.Term{{Var: mi.X[n.ID], Coef: 1}}
		for _, aid := range t.Out(n.ID) {
			terms = append(terms, lp.Term{Var: mi.Y[t.Arc(aid).Link], Coef: -1})
		}
		p.AddConstraint(fmt.Sprintf("ro_%d", n.ID), terms, lp.LE, 0)
	}
	return mi
}

// SolveExact solves the MILP to (proven or node-limited) optimality and
// decodes the active set and routing.
func (mi *MILP) SolveExact(opts lp.MIPOpts) (*topo.ActiveSet, *Routing, float64, error) {
	res, err := lp.SolveMIP(mi.Problem, opts)
	if err != nil {
		return nil, nil, 0, err
	}
	if res.Status != lp.Optimal {
		return nil, nil, 0, fmt.Errorf("mcf: exact solve %v", res.Status)
	}
	active := topo.AllOff(mi.topo)
	for nid, v := range mi.X {
		active.Router[nid] = res.X[v] > 0.5
	}
	for lid, v := range mi.Y {
		active.Link[lid] = res.X[v] > 0.5
	}
	r := NewRouting(mi.topo)
	for _, d := range mi.demands {
		if d.O == d.D || d.Rate == 0 {
			continue
		}
		p, err := mi.decodePath(res.Solution, d)
		if err != nil {
			return nil, nil, 0, err
		}
		r.Assign(d.O, d.D, p, d.Rate)
	}
	return active, r, res.Objective, nil
}

// LowerBound solves the LP relaxation and returns its objective: a
// valid lower bound on the minimum network power.
func LowerBound(t *topo.Topology, demands []traffic.Demand, m power.Model, opts MILPOpts) (float64, error) {
	opts.Relax = true
	mi := BuildMILP(t, demands, m, opts)
	sol, err := lp.Solve(mi.Problem)
	if err != nil {
		return 0, err
	}
	if sol.Status != lp.Optimal {
		return 0, fmt.Errorf("mcf: relaxation %v", sol.Status)
	}
	return sol.Objective, nil
}

// decodePath walks the f variables of one demand from O to D.
func (mi *MILP) decodePath(sol lp.Solution, d traffic.Demand) (topo.Path, error) {
	var arcs []topo.ArcID
	cur := d.O
	visited := map[topo.NodeID]bool{cur: true}
	for cur != d.D {
		next := topo.ArcID(-1)
		for _, aid := range mi.topo.Out(cur) {
			if sol.X[mi.F[flowKey{d.O, d.D, aid}]] > 0.5 {
				next = aid
				break
			}
		}
		if next < 0 {
			return topo.Path{}, fmt.Errorf("mcf: decode %d->%d stuck at %d", d.O, d.D, cur)
		}
		arcs = append(arcs, next)
		cur = mi.topo.Arc(next).To
		if visited[cur] {
			return topo.Path{}, fmt.Errorf("mcf: decode %d->%d loops at %d", d.O, d.D, cur)
		}
		visited[cur] = true
		if len(arcs) > mi.topo.NumArcs() {
			return topo.Path{}, fmt.Errorf("mcf: decode %d->%d runaway", d.O, d.D)
		}
	}
	return topo.Path{Arcs: arcs}, nil
}

// WattsOf evaluates the model objective for an explicit active set —
// handy for comparing heuristic and exact answers in tests.
func WattsOf(t *topo.Topology, m power.Model, a *topo.ActiveSet) float64 {
	return power.NetworkWatts(t, m, a)
}

// Gap returns (heuristic-exact)/exact, guarding against zero.
func Gap(heuristic, exact float64) float64 {
	if exact == 0 {
		return 0
	}
	return (heuristic - exact) / math.Abs(exact)
}
