package mcf

import (
	"testing"

	"response/internal/power"
	"response/internal/topo"
	"response/internal/traffic"
)

// Planning-engine micro-benchmarks (run with -benchmem). They pin the
// delta-rerouting and parallel-restart wins at the mcf layer so the
// top-level BenchmarkPlanGeant regression can be localized.

func geantEpsilonDemands() (*topo.Topology, []traffic.Demand) {
	g := topo.NewGeant()
	var nodes []topo.NodeID
	for _, n := range g.Nodes() {
		nodes = append(nodes, n.ID)
	}
	return g, traffic.Uniform(nodes, 1).Demands()
}

// BenchmarkGreedyMinSubset is the ε-demand always-on solve (§4.1): the
// capacity-slack regime where delta-rerouting replaces the per-trial
// full re-solve.
func BenchmarkGreedyMinSubset(b *testing.B) {
	g, demands := geantEpsilonDemands()
	m := power.Cisco12000{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := GreedyMinSubset(g, demands, m, GreedyOpts{Order: PowerDesc}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyMinSubsetFullReroute is the reference engine on the
// same instance: the ratio to BenchmarkGreedyMinSubset is the
// delta-rerouting speedup.
func BenchmarkGreedyMinSubsetFullReroute(b *testing.B) {
	g, demands := geantEpsilonDemands()
	m := power.Cisco12000{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := GreedyMinSubset(g, demands, m, GreedyOpts{Order: PowerDesc, FullReroute: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimalSubset is the whole multi-restart search (3
// deterministic orderings + 4 random restarts on the worker pool).
func BenchmarkOptimalSubset(b *testing.B) {
	g, demands := geantEpsilonDemands()
	m := power.Cisco12000{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := OptimalSubset(g, demands, m, OptimalOpts{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteDemands is one from-scratch feasibility solve — the
// unit the greedy loop used to pay per switch-off candidate.
func BenchmarkRouteDemands(b *testing.B) {
	g, demands := geantEpsilonDemands()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RouteDemands(g, demands, RouteOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}
