package mcf

import (
	"runtime"
	"testing"

	"response/internal/power"
	"response/internal/spf"
	"response/internal/topo"
)

// TestWarmFromColdIsIdentical is the warm-start exactness property: in
// the capacity-slack regime, re-running the subset search warm-started
// from its own cold result with unchanged inputs must reproduce the
// cold result bit-for-bit — same active set, same routing, same power.
// The cold result is locally minimal (every removal was tried and
// rejected at a superset, and a rejection at a superset implies
// rejection at any subset), so the warm descent removes nothing and
// the deterministic re-solve reproduces the routing.
func TestWarmFromColdIsIdentical(t *testing.T) {
	m := power.Cisco12000{}
	for name, tp := range equivTopologies(t) {
		demands := demandSets(t, tp)["epsilon"]
		cold := OptimalOpts{Seed: 11}
		aCold, rCold, err := OptimalSubset(tp, demands, m, cold)
		if err != nil {
			t.Fatalf("%s cold: %v", name, err)
		}
		warm := cold
		warm.Warm = &WarmStart{Active: aCold}
		aWarm, rWarm, err := OptimalSubset(tp, demands, m, warm)
		if err != nil {
			t.Fatalf("%s warm: %v", name, err)
		}
		if !aWarm.Equal(aCold) {
			t.Errorf("%s: warm active set differs from cold: warm=%v cold=%v", name, aWarm, aCold)
		}
		if got, want := power.NetworkWatts(tp, m, aWarm), power.NetworkWatts(tp, m, aCold); got != want {
			t.Errorf("%s: warm watts %v != cold %v", name, got, want)
		}
		if !routingsEqual(rWarm, rCold) {
			t.Errorf("%s: warm routing differs from cold", name)
		}
		if aWarm.Fingerprint() != aCold.Fingerprint() {
			t.Errorf("%s: warm fingerprint differs from cold", name)
		}
	}
}

// TestWarmFromColdIsIdenticalKeepOn covers the pinned-elements path the
// planner's on-demand rounds use (always-on X/Y carried over).
func TestWarmFromColdIsIdenticalKeepOn(t *testing.T) {
	m := power.Cisco12000{}
	tp := topo.NewGeant()
	demands := demandSets(t, tp)["epsilon"]
	keep, _, err := GreedyMinSubset(tp, demands, m, GreedyOpts{Order: PowerDesc})
	if err != nil {
		t.Fatal(err)
	}
	cold := OptimalOpts{Seed: 2, KeepOn: keep}
	aCold, rCold, err := OptimalSubset(tp, demands, m, cold)
	if err != nil {
		t.Fatal(err)
	}
	warm := cold
	warm.Warm = &WarmStart{Active: aCold}
	aWarm, rWarm, err := OptimalSubset(tp, demands, m, warm)
	if err != nil {
		t.Fatal(err)
	}
	if !aWarm.Equal(aCold) {
		t.Errorf("warm active set differs from cold under KeepOn")
	}
	if !routingsEqual(rWarm, rCold) {
		t.Errorf("warm routing differs from cold under KeepOn")
	}
}

// TestWarmDeterministicAcrossGOMAXPROCS pins that warm-started searches
// — including ones that do real descent work from a perturbed seed and
// ones that reject the seed and fall back to the cold restart pool —
// return bit-identical results regardless of parallelism.
func TestWarmDeterministicAcrossGOMAXPROCS(t *testing.T) {
	m := power.Cisco12000{}
	tp := topo.NewGeant()
	demands := demandSets(t, tp)["epsilon"]
	aCold, _, err := OptimalSubset(tp, demands, m, OptimalOpts{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	seeds := map[string]*WarmStart{
		"from-cold":   {Active: aCold},
		"from-all-on": {Active: topo.AllOn(tp), Tolerance: -1},
		"fallback":    {Active: topo.AllOff(tp)}, // unusable: forces the cold pool
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for name, seed := range seeds {
		var first *topo.ActiveSet
		var firstRouting *Routing
		for _, procs := range []int{1, 2, 8} {
			runtime.GOMAXPROCS(procs)
			a, r, err := OptimalSubset(tp, demands, m, OptimalOpts{Seed: 5, Warm: seed})
			if err != nil {
				t.Fatalf("%s GOMAXPROCS=%d: %v", name, procs, err)
			}
			if first == nil {
				first, firstRouting = a, r
				continue
			}
			if !a.Equal(first) {
				t.Errorf("%s: active set differs at GOMAXPROCS=%d", name, procs)
			}
			if !routingsEqual(r, firstRouting) {
				t.Errorf("%s: routing differs at GOMAXPROCS=%d", name, procs)
			}
		}
	}
}

// TestWarmSeedRejectionFallsBackToCold pins the tolerance gate: a seed
// whose repaired power blows past the tolerance (an all-off set has
// zero seed power, so any feasible result misses the gate) must yield
// exactly the cold result — the restart pool runs as if Warm were nil.
func TestWarmSeedRejectionFallsBackToCold(t *testing.T) {
	m := power.Cisco12000{}
	tp := topo.NewGeant()
	demands := demandSets(t, tp)["epsilon"]
	aCold, rCold, err := OptimalSubset(tp, demands, m, OptimalOpts{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	aWarm, rWarm, err := OptimalSubset(tp, demands, m, OptimalOpts{
		Seed: 9, Warm: &WarmStart{Active: topo.AllOff(tp)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !aWarm.Equal(aCold) {
		t.Errorf("rejected seed did not fall back to the cold result")
	}
	if !routingsEqual(rWarm, rCold) {
		t.Errorf("rejected seed: routing differs from cold")
	}
}

// TestWarmOutsideSlackStaysWithinTolerance covers the capacity-binding
// regime, where fingerprint identity is not provable: the warm result
// must still be a valid routing and honor the documented power gate —
// it is either the seed descended (≤ (1+tol) × seed power) or the cold
// result after fallback.
func TestWarmOutsideSlackStaysWithinTolerance(t *testing.T) {
	m := power.Cisco12000{}
	for name, tp := range equivTopologies(t) {
		demands, ok := demandSets(t, tp)["tight"]
		if !ok {
			continue
		}
		cold := OptimalOpts{Seed: 21}
		aCold, _, err := OptimalSubset(tp, demands, m, cold)
		if err != nil {
			t.Fatalf("%s cold: %v", name, err)
		}
		warm := cold
		warm.Warm = &WarmStart{Active: aCold}
		aWarm, rWarm, err := OptimalSubset(tp, demands, m, warm)
		if err != nil {
			t.Fatalf("%s warm: %v", name, err)
		}
		if err := rWarm.Validate(tp, demands); err != nil {
			t.Errorf("%s: warm routing invalid: %v", name, err)
		}
		seedW := power.NetworkWatts(tp, m, aCold)
		warmW := power.NetworkWatts(tp, m, aWarm)
		if warmW > (1+DefaultWarmTolerance)*seedW+1e-9 {
			t.Errorf("%s: warm watts %v above tolerance of seed %v", name, warmW, seedW)
		}
	}
}

// TestHopelessLinksSoundness checks the dominance pruning never skips
// an acceptable candidate: every link flagged hopeless must actually
// disconnect some routed pair when removed, i.e. the reference
// feasibility solve fails without it.
func TestHopelessLinksSoundness(t *testing.T) {
	m := power.Cisco12000{}
	for name, tp := range equivTopologies(t) {
		demands := demandSets(t, tp)["epsilon"]
		sorted := sortDemands(demands)
		active, routing, err := GreedyMinSubset(tp, demands, m, GreedyOpts{Order: PowerDesc})
		if err != nil {
			t.Fatal(err)
		}
		hopeless := hopelessLinks(tp, active, routing)
		for l, bad := range hopeless {
			if !bad {
				continue
			}
			trial := active.Clone()
			trial.Link[l] = false
			trial.EnforceInvariants(tp)
			ro := RouteOpts{Active: trial}
			if _, err := routeDemandsSorted(tp, sorted, ro, spf.NewWorkspace()); err == nil {
				t.Errorf("%s: link %d flagged hopeless but removal still routes", name, l)
			}
		}
	}
}
