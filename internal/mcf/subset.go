package mcf

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"response/internal/criticality"
	"response/internal/power"
	"response/internal/spf"
	"response/internal/topo"
	"response/internal/traffic"
)

// DefaultWarmTolerance is the power-regression gate of a warm-started
// subset search: the warm result is accepted — and the cold restart
// pool skipped — only if its power is within this fraction of the warm
// seed's own (pre-repair) power.
const DefaultWarmTolerance = 0.05

// WarmStart seeds the subset search from a previous planning result,
// the structural answer to the offline scaling wall (ROADMAP): a
// diurnal step or deviation-triggered replan starts from the last
// plan's element set and re-proves only the delta instead of
// re-descending from the full network.
type WarmStart struct {
	// Active is the element set of the previous result (a plan's
	// always-on set, or a stage-specific union). It is cloned before
	// use; the caller's set is never mutated.
	Active *topo.ActiveSet
	// Tolerance gates acceptance of the warm descent: the result is
	// kept iff its power is ≤ (1+Tolerance) × the seed's pre-repair
	// power. Since the descent only removes elements, the gate can
	// fail only when feasibility repair had to grow the seed beyond
	// the tolerance — the signal that the seed no longer represents
	// the current inputs — and in that case the search bails to the
	// cold pool immediately after repair rather than paying for a
	// near-cold descent it would almost certainly reject. Zero
	// selects DefaultWarmTolerance; a negative value always accepts.
	Tolerance float64
}

// tolerance returns the effective acceptance tolerance.
func (w *WarmStart) tolerance() float64 {
	if w.Tolerance == 0 {
		return DefaultWarmTolerance
	}
	return w.Tolerance
}

// cand is one switch-off candidate of the greedy descent.
type cand struct {
	isRouter bool
	router   topo.NodeID
	link     topo.LinkID
	watts    float64
	degree   int
	score    float64 // energy-criticality, warm descent only
}

// subsetSearch is the reusable state of one minimum-subset problem:
// topology, FFD-sorted demands, pricing and routing configuration. The
// cold greedy runs and the warm descent are both descents of the same
// machine (descend) from different starting sets over differently
// ordered candidates.
type subsetSearch struct {
	t           *topo.Topology
	sorted      []traffic.Demand
	m           power.Model
	ro          RouteOpts // defaults applied; Active is per-descent state
	keepOn      *topo.ActiveSet
	check       func(*Routing) error
	fullReroute bool
}

func newSubsetSearch(t *topo.Topology, sorted []traffic.Demand, m power.Model,
	opts OptimalOpts) *subsetSearch {
	ro := opts.Route
	ro.defaults()
	return &subsetSearch{
		t: t, sorted: sorted, m: m, ro: ro,
		keepOn: opts.KeepOn, check: opts.Check, fullReroute: opts.FullReroute,
	}
}

// candidates enumerates every switch-off candidate — routers then
// links, skipping pinned elements — with its power cost and degree.
// The enumeration order is the stable base the cold orderings permute,
// so it must not change: cold results are pinned bit-for-bit.
func (s *subsetSearch) candidates() []cand {
	var cands []cand
	for _, n := range s.t.Nodes() {
		if n.Kind == topo.KindHost {
			continue
		}
		if s.keepOn != nil && s.keepOn.Router[n.ID] {
			continue
		}
		w := s.m.ChassisWatts(n)
		for _, aid := range s.t.Out(n.ID) {
			w += s.m.PortWatts(n, s.t.Arc(aid))
		}
		cands = append(cands, cand{isRouter: true, router: n.ID, watts: w, degree: s.t.Degree(n.ID)})
	}
	for _, l := range s.t.Links() {
		if s.keepOn != nil && s.keepOn.Link[l.ID] {
			continue
		}
		w := s.m.PortWatts(s.t.Node(l.A), s.t.Arc(l.AB)) +
			s.m.PortWatts(s.t.Node(l.B), s.t.Arc(l.BA)) + 2*s.m.AmpWatts(l)
		cands = append(cands, cand{isRouter: false, link: l.ID, watts: w})
	}
	return cands
}

// orderCands permutes cands in place per the cold greedy ordering.
func orderCands(cands []cand, order Order, seed int64) {
	switch order {
	case PowerDesc:
		sort.SliceStable(cands, func(i, j int) bool { return cands[i].watts > cands[j].watts })
	case PowerAsc:
		sort.SliceStable(cands, func(i, j int) bool { return cands[i].watts < cands[j].watts })
	case DegreeAsc:
		sort.SliceStable(cands, func(i, j int) bool {
			if cands[i].isRouter != cands[j].isRouter {
				return cands[i].isRouter // routers first
			}
			return cands[i].degree < cands[j].degree
		})
	case Random:
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	}
}

// descend runs the greedy switch-off loop from the given starting set
// over the given candidate order: try each candidate off, keep it off
// if the demands still route (and Check still passes). routing must be
// a solve of the demands on start that descend may mutate; fresh
// reports whether it is the exact from-scratch solve on start (the
// final routing is re-solved when staleness was introduced, so the
// result matches the reference implementation byte-for-byte). The
// final set is trimmed of idle elements.
func (s *subsetSearch) descend(ctx context.Context, active *topo.ActiveSet, cands []cand,
	ws *spf.Workspace, routing *Routing, fresh bool) (*topo.ActiveSet, *Routing, error) {

	ro := s.ro
	ro.Active = active

	// Delta-rerouting is exact — provably the same accept/reject
	// verdicts as the from-scratch reference — only in the
	// capacity-slack regime, where feasibility reduces to connectivity
	// (see capacitySlack). Outside it (and whenever Check must vet the
	// exact reference routing) every trial runs the full solve.
	incremental := !s.fullReroute && s.check == nil && capacitySlack(s.t, s.sorted, ro.MaxUtil)
	var delta *deltaRouter
	if incremental {
		delta = newDeltaRouter(s.t, s.sorted, routing)
	}

	for _, c := range cands {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		trial := active.Clone()
		if c.isRouter {
			if !trial.Router[c.router] {
				continue
			}
			trial.Router[c.router] = false
		} else {
			if !trial.Link[c.link] {
				continue
			}
			trial.Link[c.link] = false
		}
		trial.EnforceInvariants(s.t)
		if violatesKeepOn(trial, s.keepOn) {
			continue
		}
		ro.Active = trial
		if incremental {
			if delta.try(s.t, active, trial, ro, ws) {
				active = trial
				fresh = false
			}
			continue
		}
		r, err := routeDemandsSorted(s.t, s.sorted, ro, ws)
		if err != nil {
			continue // must stay on
		}
		if s.check != nil && s.check(r) != nil {
			continue // violates the caller's constraint (e.g. delay bound)
		}
		active = trial
		routing = r
	}
	if incremental {
		routing = delta.routing
	}
	if !fresh {
		// Re-solve from scratch on the final active set so the returned
		// routing is byte-identical to the reference implementation's
		// (which rerouted everything at its last accepted switch-off).
		ro.Active = active
		if r, err := routeDemandsSorted(s.t, s.sorted, ro, ws); err == nil {
			routing = r
		}
	}
	// Drop elements the final routing does not touch (constraint 3
	// tightening): an on element carrying nothing can sleep unless
	// pinned.
	trimIdle(s.t, active, routing, s.keepOn)
	return active, routing, nil
}

// repair routes the demands on the hint subgraph, minimally expanding
// the hint when some demand has no path on it: the unroutable demand
// is placed on the full network and its path's elements are powered
// on, growing the hint in place. The bool result reports whether the
// returned routing is the exact from-scratch solve on the (final)
// hint set; when the per-demand fallback ran it is not, and the
// descent re-solves at the end.
func (s *subsetSearch) repair(hint *topo.ActiveSet, ws *spf.Workspace) (*Routing, bool, error) {
	ro := s.ro
	ro.Active = hint
	if r, err := routeDemandsSorted(s.t, s.sorted, ro, ws); err == nil {
		return r, true, nil
	}
	r := NewRouting(s.t)
	var rate float64
	so := loadAwareOptions(ro, r.Load, &rate)
	roFull := s.ro
	roFull.Active = nil
	soFull := loadAwareOptions(roFull, r.Load, &rate)
	for _, d := range s.sorted {
		if d.O == d.D || d.Rate == 0 {
			r.Paths[[2]topo.NodeID{d.O, d.D}] = topo.Path{}
			continue
		}
		rate = d.Rate
		p, ok := ws.ShortestPath(s.t, d.O, d.D, so)
		if !ok || p.Empty() {
			// Disconnected (or saturated) on the hint: place on the full
			// network and wake the path. Later searches see the expanded
			// hint because the Active pointer is shared.
			p, ok = ws.ShortestPath(s.t, d.O, d.D, soFull)
			if !ok || p.Empty() {
				return nil, false, fmt.Errorf("%w: %d->%d rate %.3g", ErrInfeasible, d.O, d.D, d.Rate)
			}
			hint.ActivatePath(s.t, p)
		}
		r.Assign(d.O, d.D, p, d.Rate)
	}
	return r, false, nil
}

// criticalityScores ranks links by energy-criticality — flow-through ×
// slack-sensitivity — with a HITS-style mutual reinforcement over the
// link→demand incidence of the routing: a link is critical when it
// carries demands that themselves depend on critical links, seeded and
// reweighted by link utilization (the slack term). Low scores mark
// links the warm descent should try to switch off first. The HITS
// kernel lives in internal/criticality (shared with the trace store's
// online critical-path query) and preserves this call site's exact
// float-operation order — plan fingerprints pin it.
func criticalityScores(t *topo.Topology, sorted []traffic.Demand, r *Routing, maxUtil float64) []float64 {
	util := make([]float64, t.NumLinks())
	for _, l := range t.Links() {
		u := r.Load[l.AB] / (t.Arc(l.AB).Capacity * maxUtil)
		if v := r.Load[l.BA] / (t.Arc(l.BA).Capacity * maxUtil); v > u {
			u = v
		}
		util[l.ID] = u
	}
	return criticality.Scores(util, len(sorted), func(i int, yield func(link int)) {
		d := sorted[i]
		p, ok := r.Paths[[2]topo.NodeID{d.O, d.D}]
		if !ok {
			return
		}
		for _, aid := range p.Arcs {
			yield(int(t.Arc(aid).Link))
		}
	}, 4)
}

// hopelessLinks flags switch-off candidates that can never be accepted
// in any later state of the descent — the dominance pruning of the
// warm path: a bridge of the active subgraph that carries traffic
// separates the endpoints of every demand routed through it, so
// removing it disconnects those pairs; and since the descent only
// shrinks the set, a bridge stays a bridge. Bridges are found with one
// iterative Tarjan DFS over the active subgraph.
func hopelessLinks(t *topo.Topology, active *topo.ActiveSet, r *Routing) []bool {
	nodeOn := func(id topo.NodeID) bool {
		if t.Node(id).Kind == topo.KindHost {
			return true
		}
		return active.Router[id]
	}
	n := t.NumNodes()
	disc := make([]int, n)
	low := make([]int, n)
	parentLink := make([]topo.LinkID, n)
	out := make([]bool, t.NumLinks())
	timer := 0
	type frame struct {
		node   topo.NodeID
		arcIdx int
	}
	var stack []frame
	for _, root := range t.Nodes() {
		if disc[root.ID] != 0 || !nodeOn(root.ID) {
			continue
		}
		timer++
		disc[root.ID], low[root.ID] = timer, timer
		parentLink[root.ID] = -1
		stack = append(stack[:0], frame{node: root.ID})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			u := f.node
			arcs := t.Out(u)
			if f.arcIdx < len(arcs) {
				a := t.Arc(arcs[f.arcIdx])
				f.arcIdx++
				if !active.Link[a.Link] || !nodeOn(a.To) || a.Link == parentLink[u] {
					continue
				}
				if disc[a.To] == 0 {
					timer++
					disc[a.To], low[a.To] = timer, timer
					parentLink[a.To] = a.Link
					stack = append(stack, frame{node: a.To})
				} else if disc[a.To] < low[u] {
					low[u] = disc[a.To]
				}
				continue
			}
			stack = stack[:len(stack)-1]
			if len(stack) == 0 {
				continue
			}
			p := stack[len(stack)-1].node
			if low[u] < low[p] {
				low[p] = low[u]
			}
			if low[u] > disc[p] {
				// parentLink[u] is a bridge; hopeless iff it carries flow.
				l := t.Link(parentLink[u])
				if r.Load[l.AB] > 0 || r.Load[l.BA] > 0 {
					out[l.ID] = true
				}
			}
		}
	}
	return out
}

// warmSubset attempts the warm-started descent: repair the seed to
// feasibility, order candidates by ascending energy-criticality, prune
// hopeless bridges, descend once, and accept iff the result's power is
// within the seed's tolerance. When repair alone already grows the
// seed past the tolerance the descent is skipped outright — its cost
// rivals a cold search (which at least runs its orderings in parallel)
// while its starting point has provably lost the seed's benefit.
// ok=false sends the caller to the cold restart pool (unusable seed,
// Check rejection, or tolerance miss); err is only a context
// cancellation.
func warmSubset(ctx context.Context, t *topo.Topology, sorted []traffic.Demand,
	m power.Model, opts OptimalOpts) (*topo.ActiveSet, *Routing, bool, error) {

	hint := opts.Warm.Active.Clone()
	if opts.KeepOn != nil {
		hint.Union(opts.KeepOn)
	}
	hint.EnforceInvariants(t)
	seedWatts := power.NetworkWatts(t, m, hint)

	s := newSubsetSearch(t, sorted, m, opts)
	ws := spf.NewWorkspace()
	routing, fresh, err := s.repair(hint, ws)
	if err != nil {
		return nil, nil, false, ctx.Err()
	}
	if s.check != nil && s.check(routing) != nil {
		return nil, nil, false, nil
	}
	if tol := opts.Warm.tolerance(); tol >= 0 && !fresh &&
		power.NetworkWatts(t, m, hint) > (1+tol)*seedWatts+1e-9 {
		// Feasibility repair had to grow the seed past the acceptance
		// gate: the demands drifted too far for the seed to describe
		// them, and a descent from the bloated hint is a near-cold
		// search whose result would start from — and rarely recover
		// below — the tolerance it already busted. Bail before paying
		// for it and let the cold restart pool (which runs its
		// orderings concurrently) handle the stage.
		return nil, nil, false, nil
	}

	scores := criticalityScores(t, sorted, routing, s.ro.MaxUtil)
	hopeless := hopelessLinks(t, hint, routing)
	all := s.candidates()
	cands := all[:0]
	for _, c := range all {
		if c.isRouter {
			if !hint.Router[c.router] {
				continue
			}
			for _, aid := range t.Out(c.router) {
				a := t.Arc(aid)
				if hint.Link[a.Link] {
					c.score += scores[a.Link]
				}
			}
		} else {
			if !hint.Link[c.link] || hopeless[c.link] {
				continue
			}
			c.score = scores[c.link]
		}
		cands = append(cands, c)
	}
	// Least critical first; ties drop the most power-hungry element
	// first, then routers before links, then by ID — fully
	// deterministic regardless of GOMAXPROCS.
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score < cands[j].score
		}
		if cands[i].watts != cands[j].watts {
			return cands[i].watts > cands[j].watts
		}
		if cands[i].isRouter != cands[j].isRouter {
			return cands[i].isRouter
		}
		if cands[i].isRouter {
			return cands[i].router < cands[j].router
		}
		return cands[i].link < cands[j].link
	})

	active, r, err := s.descend(ctx, hint, cands, ws, routing, fresh)
	if err != nil {
		return nil, nil, false, err
	}
	warmWatts := power.NetworkWatts(t, m, active)
	if tol := opts.Warm.tolerance(); tol >= 0 && warmWatts > (1+tol)*seedWatts+1e-9 {
		return nil, nil, false, nil
	}
	return active, r, true, nil
}
