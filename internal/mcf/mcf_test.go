package mcf

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"response/internal/lp"
	"response/internal/power"
	"response/internal/topo"
	"response/internal/traffic"
)

// diamond: A-{B,C}-D with 10 Mbps links.
func diamond(t *testing.T) (*topo.Topology, [4]topo.NodeID) {
	t.Helper()
	tp := topo.New("diamond")
	a := tp.AddNode("A", topo.KindRouter)
	b := tp.AddNode("B", topo.KindRouter)
	c := tp.AddNode("C", topo.KindRouter)
	d := tp.AddNode("D", topo.KindRouter)
	tp.AddLink(a, b, 10*topo.Mbps, 0.001)
	tp.AddLink(a, c, 10*topo.Mbps, 0.001)
	tp.AddLink(b, d, 10*topo.Mbps, 0.001)
	tp.AddLink(c, d, 10*topo.Mbps, 0.001)
	return tp, [4]topo.NodeID{a, b, c, d}
}

func TestRouteDemandsSimple(t *testing.T) {
	tp, n := diamond(t)
	demands := []traffic.Demand{{O: n[0], D: n[3], Rate: 5 * topo.Mbps}}
	r, err := RouteDemands(tp, demands, RouteOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(tp, demands); err != nil {
		t.Fatal(err)
	}
	p, ok := r.Path(n[0], n[3])
	if !ok || p.Len() != 2 {
		t.Errorf("path = %v", p)
	}
}

func TestRouteDemandsSplitsAcrossDiamond(t *testing.T) {
	tp, n := diamond(t)
	// Two 8 Mbps flows A->D cannot share one 10 Mbps side.
	demands := []traffic.Demand{
		{O: n[0], D: n[3], Rate: 8 * topo.Mbps},
		{O: n[1], D: n[2], Rate: 8 * topo.Mbps},
	}
	r, err := RouteDemands(tp, demands, RouteOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if u := r.MaxUtilization(tp); u > 1+1e-9 {
		t.Errorf("max utilization %v > 1", u)
	}
}

func TestRouteDemandsInfeasible(t *testing.T) {
	tp, n := diamond(t)
	demands := []traffic.Demand{{O: n[0], D: n[3], Rate: 11 * topo.Mbps}}
	_, err := RouteDemands(tp, demands, RouteOpts{})
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestRouteDemandsMaxUtil(t *testing.T) {
	tp, n := diamond(t)
	demands := []traffic.Demand{{O: n[0], D: n[3], Rate: 6 * topo.Mbps}}
	if _, err := RouteDemands(tp, demands, RouteOpts{MaxUtil: 0.5}); err == nil {
		t.Error("6 Mbps should not fit under 50% ceiling on 10 Mbps links")
	}
	if _, err := RouteDemands(tp, demands, RouteOpts{MaxUtil: 0.7}); err != nil {
		t.Errorf("6 Mbps should fit under 70%%: %v", err)
	}
}

func TestRouteDemandsActiveRestriction(t *testing.T) {
	tp, n := diamond(t)
	active := topo.AllOn(tp)
	bd, _ := tp.ArcBetween(n[1], n[3])
	active.Link[tp.Arc(bd).Link] = false
	demands := []traffic.Demand{{O: n[0], D: n[3], Rate: 1 * topo.Mbps}}
	r, err := RouteDemands(tp, demands, RouteOpts{Active: active})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := r.Path(n[0], n[3])
	if p.UsesNode(tp, n[1]) {
		t.Error("path used powered-off side")
	}
}

func TestRouteOnPaths(t *testing.T) {
	tp, n := diamond(t)
	ab, _ := tp.ArcBetween(n[0], n[1])
	bd, _ := tp.ArcBetween(n[1], n[3])
	up := topo.Path{Arcs: []topo.ArcID{ab, bd}}
	choose := func(o, d topo.NodeID) topo.Path { return up }
	demands := []traffic.Demand{{O: n[0], D: n[3], Rate: 4 * topo.Mbps}}
	if _, err := RouteOnPaths(tp, demands, choose, 1.0); err != nil {
		t.Fatal(err)
	}
	over := []traffic.Demand{
		{O: n[0], D: n[3], Rate: 6 * topo.Mbps},
		{O: n[1], D: n[3], Rate: 6 * topo.Mbps},
	}
	chooseAny := func(o, d topo.NodeID) topo.Path {
		if o == n[0] {
			return up
		}
		return topo.Path{Arcs: []topo.ArcID{bd}}
	}
	if _, err := RouteOnPaths(tp, over, chooseAny, 1.0); !errors.Is(err, ErrInfeasible) {
		t.Errorf("overload not detected: %v", err)
	}
}

// Property: any successful routing respects capacity on every arc and
// conserves path endpoints.
func TestRouteDemandsCapacityProperty(t *testing.T) {
	tp, n := diamond(t)
	f := func(r1, r2, r3 uint8) bool {
		demands := []traffic.Demand{
			{O: n[0], D: n[3], Rate: float64(r1) * 100e3},
			{O: n[1], D: n[2], Rate: float64(r2) * 100e3},
			{O: n[3], D: n[0], Rate: float64(r3) * 100e3},
		}
		r, err := RouteDemands(tp, demands, RouteOpts{})
		if err != nil {
			return true // infeasible is a legal outcome
		}
		for _, a := range tp.Arcs() {
			if r.Load[a.ID] > a.Capacity+1e-6 {
				return false
			}
		}
		return r.Validate(tp, demands) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestGreedyMinSubsetTurnsThingsOff(t *testing.T) {
	tp, n := diamond(t)
	m := power.Cisco12000{}
	demands := []traffic.Demand{{O: n[0], D: n[3], Rate: 1 * topo.Mbps}}
	active, routing, err := GreedyMinSubset(tp, demands, m, GreedyOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := routing.Validate(tp, demands); err != nil {
		t.Fatal(err)
	}
	_, links := active.CountOn()
	if links > 2 {
		t.Errorf("links on = %d, want <= 2 (single path suffices)", links)
	}
	// The routed path must be active.
	p, _ := routing.Path(n[0], n[3])
	if !p.ActiveUnder(tp, active) {
		t.Error("routing uses powered-off elements")
	}
	// Power must not exceed the full network's.
	if power.NetworkWatts(tp, m, active) > power.FullWatts(tp, m) {
		t.Error("subset draws more than full network")
	}
}

func TestGreedyRespectsKeepOn(t *testing.T) {
	tp, n := diamond(t)
	m := power.Cisco12000{}
	keep := topo.AllOff(tp)
	keep.Router[n[1]] = true
	bd, _ := tp.ArcBetween(n[1], n[3])
	keep.Link[tp.Arc(bd).Link] = true
	demands := []traffic.Demand{{O: n[0], D: n[3], Rate: 1 * topo.Mbps}}
	active, _, err := GreedyMinSubset(tp, demands, m, GreedyOpts{KeepOn: keep})
	if err != nil {
		t.Fatal(err)
	}
	if !active.Router[n[1]] || !active.Link[tp.Arc(bd).Link] {
		t.Error("KeepOn violated")
	}
}

func TestOptimalNotWorseThanGreedy(t *testing.T) {
	g := topo.NewGeant()
	m := power.Cisco12000{}
	tm := traffic.Gravity(g, traffic.GravityOpts{TotalRate: 2 * topo.Gbps})
	demands := tm.Demands()
	ga, _, err := GreedyMinSubset(g, demands, m, GreedyOpts{})
	if err != nil {
		t.Fatal(err)
	}
	oa, _, err := OptimalSubset(g, demands, m, OptimalOpts{RandomRestarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	gw := power.NetworkWatts(g, m, ga)
	ow := power.NetworkWatts(g, m, oa)
	if ow > gw+1e-6 {
		t.Errorf("optimal %v > greedy %v", ow, gw)
	}
}

// TestGreedyMatchesExactMILP cross-checks the heuristic against the
// branch-and-bound optimum on a small instance.
func TestGreedyMatchesExactMILP(t *testing.T) {
	tp, n := diamond(t)
	m := power.Cisco12000{}
	demands := []traffic.Demand{
		{O: n[0], D: n[3], Rate: 2 * topo.Mbps},
		{O: n[1], D: n[0], Rate: 1 * topo.Mbps},
	}
	mi := BuildMILP(tp, demands, m, MILPOpts{})
	exActive, exRouting, exObj, err := mi.SolveExact(lp.MIPOpts{MaxNodes: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if err := exRouting.Validate(tp, demands); err != nil {
		t.Fatal(err)
	}
	if got := power.NetworkWatts(tp, m, exActive); math.Abs(got-exObj) > 1e-6 {
		t.Errorf("objective %v vs active-set power %v", exObj, got)
	}
	ha, _, err := OptimalSubset(tp, demands, m, OptimalOpts{})
	if err != nil {
		t.Fatal(err)
	}
	hw := power.NetworkWatts(tp, m, ha)
	if hw < exObj-1e-6 {
		t.Errorf("heuristic %v beat the proven optimum %v — exact solver broken", hw, exObj)
	}
	if Gap(hw, exObj) > 0.15 {
		t.Errorf("heuristic gap %.1f%% too large (heuristic %v, exact %v)",
			100*Gap(hw, exObj), hw, exObj)
	}
}

func TestLowerBoundIsBound(t *testing.T) {
	tp, n := diamond(t)
	m := power.Cisco12000{}
	demands := []traffic.Demand{{O: n[0], D: n[3], Rate: 2 * topo.Mbps}}
	lb, err := LowerBound(tp, demands, m, MILPOpts{})
	if err != nil {
		t.Fatal(err)
	}
	active, _, err := OptimalSubset(tp, demands, m, OptimalOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if w := power.NetworkWatts(tp, m, active); w < lb-1e-6 {
		t.Errorf("heuristic %v below LP bound %v", w, lb)
	}
}

func TestKShortestSubsetFeasibleAndSparse(t *testing.T) {
	g := topo.NewGeant()
	m := power.Cisco12000{}
	tm := traffic.Gravity(g, traffic.GravityOpts{TotalRate: 2 * topo.Gbps})
	demands := tm.Demands()
	active, routing, err := KShortestSubset(g, demands, m, KShortOpts{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := routing.Validate(g, demands); err != nil {
		t.Fatal(err)
	}
	if routing.MaxUtilization(g) > 1+1e-9 {
		t.Error("overloaded")
	}
	_, links := active.CountOn()
	if links >= g.NumLinks() {
		t.Error("heuristic never sleeps anything")
	}
	for _, p := range routing.Paths {
		if !p.ActiveUnder(g, active) {
			t.Fatal("path over inactive elements")
		}
	}
}

func TestKShortestSubsetInfeasible(t *testing.T) {
	tp, n := diamond(t)
	m := power.Cisco12000{}
	demands := []traffic.Demand{{O: n[0], D: n[3], Rate: 25 * topo.Mbps}}
	if _, _, err := KShortestSubset(tp, demands, m, KShortOpts{}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v", err)
	}
}

func TestCandidatePathsReuse(t *testing.T) {
	tp, n := diamond(t)
	demands := []traffic.Demand{{O: n[0], D: n[3], Rate: topo.Mbps}}
	cands := CandidatePaths(tp, demands, 3)
	if len(cands[[2]topo.NodeID{n[0], n[3]}]) != 2 {
		t.Errorf("diamond has 2 simple paths, got %d", len(cands[[2]topo.NodeID{n[0], n[3]}]))
	}
	m := power.Cisco12000{}
	if _, _, err := KShortestSubset(tp, demands, m, KShortOpts{Paths: cands}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxFeasibleScale(t *testing.T) {
	tp, n := diamond(t)
	base := traffic.NewMatrix()
	base.Set(n[0], n[3], 1*topo.Mbps)
	s := MaxFeasibleScale(tp, base, RouteOpts{}, 0.01)
	// A->D can use both sides of the diamond... unsplittably only one:
	// 10 Mbps max → scale ≈ 10.
	if s < 9 || s > 11 {
		t.Errorf("scale = %v, want ≈10", s)
	}
	empty := traffic.NewMatrix()
	empty.Set(n[0], n[3], 100*topo.Mbps)
	if s := MaxFeasibleScale(tp, empty, RouteOpts{}, 0.01); s > 0.11 {
		t.Errorf("overloaded base should scale below 0.11, got %v", s)
	}
}

func TestUsedElements(t *testing.T) {
	tp, n := diamond(t)
	demands := []traffic.Demand{{O: n[0], D: n[3], Rate: topo.Mbps}}
	r, err := RouteDemands(tp, demands, RouteOpts{})
	if err != nil {
		t.Fatal(err)
	}
	used := r.UsedElements(tp)
	routers, links := used.CountOn()
	if routers != 3 || links != 2 {
		t.Errorf("used = %d routers %d links, want 3/2", routers, links)
	}
}

func TestUnassign(t *testing.T) {
	tp, n := diamond(t)
	r := NewRouting(tp)
	ab, _ := tp.ArcBetween(n[0], n[1])
	p := topo.Path{Arcs: []topo.ArcID{ab}}
	r.Assign(n[0], n[1], p, 100)
	if r.Load[ab] != 100 {
		t.Fatal("assign load")
	}
	r.Unassign(n[0], n[1], 100)
	if r.Load[ab] != 0 {
		t.Error("unassign load")
	}
	if _, ok := r.Path(n[0], n[1]); ok {
		t.Error("path not removed")
	}
	r.Unassign(n[0], n[1], 100) // no-op on missing
}
