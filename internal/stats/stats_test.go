package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3}, 2},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); math.Abs(got-4) > 1e-12 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Variance([]float64{3}) != 0 {
		t.Error("Variance of singleton should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 {
		t.Errorf("Min = %v", Min(xs))
	}
	if Max(xs) != 7 {
		t.Errorf("Max = %v", Max(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("empty sample should error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("out-of-range percentile should error")
	}
}

func TestPercentileUnsortedInputUnchanged(t *testing.T) {
	xs := []float64{9, 1, 5}
	MustPercentile(xs, 50)
	if xs[0] != 9 || xs[1] != 1 || xs[2] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestBoxplot(t *testing.T) {
	b, err := NewBoxplot([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	if err != nil {
		t.Fatal(err)
	}
	if b.Min != 1 || b.Max != 9 || b.Median != 5 || b.N != 9 {
		t.Errorf("boxplot = %+v", b)
	}
	if b.Q1 != 3 || b.Q3 != 7 {
		t.Errorf("quartiles = %v, %v", b.Q1, b.Q3)
	}
	if _, err := NewBoxplot(nil); err == nil {
		t.Error("empty boxplot should error")
	}
}

func TestCDFBasic(t *testing.T) {
	pts := CDF([]float64{1, 1, 2, 3})
	if len(pts) != 3 {
		t.Fatalf("CDF points = %d, want 3 (dups collapsed)", len(pts))
	}
	if pts[0].X != 1 || math.Abs(pts[0].Y-0.5) > 1e-12 {
		t.Errorf("first point = %+v", pts[0])
	}
	if pts[2].Y != 1 {
		t.Errorf("last CDF value = %v, want 1", pts[2].Y)
	}
}

func TestCCDFBasic(t *testing.T) {
	pts := CCDF([]float64{1, 2, 3, 4})
	if pts[0].Y != 1 {
		t.Errorf("CCDF starts at %v, want 1", pts[0].Y)
	}
	if pts[len(pts)-1].Y != 0.25 {
		t.Errorf("CCDF ends at %v, want 0.25", pts[len(pts)-1].Y)
	}
}

// Property: CDF is monotone nondecreasing in both X and Y, Y in (0,1].
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) == 0 {
			return true
		}
		pts := CDF(xs)
		for i := 1; i < len(pts); i++ {
			if pts[i].X <= pts[i-1].X || pts[i].Y < pts[i-1].Y {
				return false
			}
		}
		return pts[len(pts)-1].Y == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: CCDF is monotone nonincreasing in Y, starts at 1.
func TestCCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) == 0 {
			return true
		}
		pts := CCDF(xs)
		if pts[0].Y != 1 {
			return false
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Y > pts[i-1].Y {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: FractionAtLeast agrees with the CCDF at sampled thresholds.
func TestFractionAtLeastMatchesCCDF(t *testing.T) {
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) == 0 {
			return true
		}
		for _, p := range CCDF(xs) {
			if math.Abs(FractionAtLeast(xs, p.X)-p.Y) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: percentile interpolation is bounded by sample min/max and
// monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := sanitize(raw)
		if len(xs) == 0 {
			return true
		}
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1 := MustPercentile(xs, p1)
		v2 := MustPercentile(xs, p2)
		return v1 <= v2+1e-9 && v1 >= Min(xs)-1e-9 && v2 <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWelfordMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		w.Add(xs[i])
	}
	if math.Abs(w.Mean()-Mean(xs)) > 1e-9 {
		t.Errorf("Welford mean %v vs %v", w.Mean(), Mean(xs))
	}
	if math.Abs(w.Variance()-Variance(xs)) > 1e-9 {
		t.Errorf("Welford variance %v vs %v", w.Variance(), Variance(xs))
	}
	if w.N() != len(xs) {
		t.Errorf("Welford N = %d", w.N())
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0.5, 1.5, 1.6, 9.9, -3, 42}, 0, 10, 10)
	if h[0] != 2 { // 0.5 and clamped -3
		t.Errorf("bin0 = %d", h[0])
	}
	if h[1] != 2 {
		t.Errorf("bin1 = %d", h[1])
	}
	if h[9] != 2 { // 9.9 and clamped 42
		t.Errorf("bin9 = %d", h[9])
	}
	if Histogram(nil, 0, 1, 0) != nil {
		t.Error("zero bins should return nil")
	}
	if Histogram(nil, 5, 5, 3) != nil {
		t.Error("empty range should return nil")
	}
}

// sanitize keeps quick-generated floats finite and deduplicates NaN.
func sanitize(raw []float64) []float64 {
	var out []float64
	for _, x := range raw {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		out = append(out, x)
	}
	if len(out) > 50 {
		out = out[:50]
	}
	sort.Float64s(out) // determinism of failures
	return out
}
