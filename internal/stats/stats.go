// Package stats provides the small statistical toolkit used by the
// evaluation harness: percentiles, empirical CDF/CCDF curves, five-number
// boxplot summaries, and running moments.
//
// All functions treat their input as a sample of a one-dimensional
// distribution. Inputs are never mutated; functions that need ordering
// sort a private copy.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmptySample is returned by summaries that are undefined on empty input.
var ErrEmptySample = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by n), or 0
// for samples with fewer than two elements.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs. It panics on empty input by
// design: callers in the harness always have non-empty samples and a
// silent zero would corrupt figures.
func Min(xs []float64) float64 {
	v := xs[0]
	for _, x := range xs[1:] {
		if x < v {
			v = x
		}
	}
	return v
}

// Max returns the largest element of xs. See Min about empty input.
func Max(xs []float64) float64 {
	v := xs[0]
	for _, x := range xs[1:] {
		if x > v {
			v = x
		}
	}
	return v
}

// Percentile returns the p-th percentile of xs using linear
// interpolation between closest ranks, with p in [0,100].
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptySample
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo], nil
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// MustPercentile is Percentile for callers that guarantee non-empty
// input; it panics on error.
func MustPercentile(xs []float64, p float64) float64 {
	v, err := Percentile(xs, p)
	if err != nil {
		panic(err)
	}
	return v
}

// Boxplot is the five-number summary (plus mean) used for Figure 9
// style whisker plots (whiskers from min to max, as in the paper).
type Boxplot struct {
	Min, Q1, Median, Q3, Max float64
	Mean                     float64
	N                        int
}

// NewBoxplot summarizes xs into a Boxplot.
func NewBoxplot(xs []float64) (Boxplot, error) {
	if len(xs) == 0 {
		return Boxplot{}, ErrEmptySample
	}
	b := Boxplot{
		Min:    Min(xs),
		Q1:     MustPercentile(xs, 25),
		Median: MustPercentile(xs, 50),
		Q3:     MustPercentile(xs, 75),
		Max:    Max(xs),
		Mean:   Mean(xs),
		N:      len(xs),
	}
	return b, nil
}

// Point is one (X, Y) sample of an empirical distribution curve.
type Point struct{ X, Y float64 }

// CDF returns the empirical cumulative distribution of xs evaluated at
// each distinct sample value: Y = P(sample <= X), Y in (0,1].
func CDF(xs []float64) []Point {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := float64(len(s))
	var out []Point
	for i := 0; i < len(s); i++ {
		// Collapse runs of equal values into a single point at the
		// highest cumulative probability.
		if i+1 < len(s) && s[i+1] == s[i] {
			continue
		}
		out = append(out, Point{X: s[i], Y: float64(i+1) / n})
	}
	return out
}

// CCDF returns the complementary CDF of xs: Y = P(sample >= X).
// The first point has Y = 1 at the sample minimum.
func CCDF(xs []float64) []Point {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := float64(len(s))
	var out []Point
	for i := 0; i < len(s); i++ {
		if i > 0 && s[i] == s[i-1] {
			continue
		}
		out = append(out, Point{X: s[i], Y: float64(len(s)-i) / n})
	}
	return out
}

// FractionAtLeast returns the fraction of samples >= threshold.
func FractionAtLeast(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := 0
	for _, x := range xs {
		if x >= threshold {
			c++
		}
	}
	return float64(c) / float64(len(xs))
}

// Histogram counts samples into nbins equal-width bins over [lo, hi].
// Samples outside the range are clamped into the edge bins.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	if nbins <= 0 || hi <= lo {
		return nil
	}
	counts := make([]int, nbins)
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		counts[i]++
	}
	return counts
}

// Welford accumulates mean and variance online without storing samples.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations folded in so far.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 before any observation).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }
