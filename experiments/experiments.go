// Package experiments is the public reproduction harness of the
// response module: one Run function per figure or table of the paper's
// evaluation, each returning a printable result. The cmd/response-sim,
// cmd/response-analyze and cmd/response-bench binaries are thin drivers
// over this package.
package experiments

import (
	"io"

	iexp "response/internal/experiments"
	"response/internal/stats"
	itrace "response/internal/trace"
	"response/topology"
)

// Result types, one per figure/table; each has a Print method.
type (
	// Fig1a is the traffic-deviation CCDF of the datacenter trace.
	Fig1a = iexp.Fig1a
	// Fig1b is the route-recomputation-rate comparison (also provides
	// the Figure 2a configuration-dominance view via PrintFig2a).
	Fig1b = iexp.Fig1b
	// Fig2b is the energy-critical path coverage result.
	Fig2b = iexp.Fig2b
	// Fig4 is the fat-tree sine-wave power experiment.
	Fig4 = iexp.Fig4
	// Fig5 is the multi-day GÉANT replay.
	Fig5 = iexp.Fig5
	// Fig6 is the PoP-access ISP power experiment.
	Fig6 = iexp.Fig6
	// Fig7 is the Click-testbed failover reproduction.
	Fig7 = iexp.Fig7
	// Fig8 is an ns-2-style adaptation experiment (8a ISP, 8b DC).
	Fig8 = iexp.Fig8
	// Fig9 is the streaming-application impact experiment.
	Fig9 = iexp.Fig9
	// WebTable is the web-workload latency table.
	WebTable = iexp.WebTable
	// AlwaysOnShare is the §4.1 always-on capacity-share measurement.
	AlwaysOnShare = iexp.AlwaysOnShare
	// StressSweep is the §4.2 stress-exclusion sensitivity sweep.
	StressSweep = iexp.StressSweep
	// Online is a large-scale online-runtime scenario result (counters,
	// behavioral fingerprint, delivered fraction).
	Online = iexp.Online
	// GenSweep is the generated-topology scale sweep: plan time, swap
	// cost and invariant findings as a function of network size.
	GenSweep = iexp.GenSweep
	// GenPoint is one instance of a GenSweep.
	GenPoint = iexp.GenPoint
	// GenSweepOpts parameterizes RunGeneratedSweep.
	GenSweepOpts = iexp.GenSweepOpts
	// WarmBench is the warm-start replan benchmark (cold plan vs warm
	// replan per generated instance).
	WarmBench = iexp.WarmBench
	// TraceBench is the trace-store ingest/query benchmark (synthetic
	// incident stream through response/tracestore).
	TraceBench = iexp.TraceBench
	// WarmPoint is one instance of a WarmBench.
	WarmPoint = iexp.WarmPoint
	// PathBench is the path-engine benchmark: a fixed K-shortest query
	// workload through the reference engine versus the goal-directed
	// ones, every answer cross-checked for byte equality.
	PathBench = iexp.PathBench
	// PathPoint is one instance × engine cell of a PathBench.
	PathPoint = iexp.PathPoint
	// Point is one (x, y) sample of a result curve.
	Point = stats.Point
)

// OnlineScenarios lists the runnable online scenario names.
func OnlineScenarios() []string { return iexp.OnlineScenarios() }

// RunOnline executes a named online-runtime scenario (diurnal replay,
// flash crowd, failure storm, rolling repair, click failover) with the
// given managed-flow count, seed and simulated duration. Deterministic
// under identical arguments.
func RunOnline(name string, flows int, seed int64, durationSec float64, fullAlloc, meterPower bool) (Online, error) {
	return iexp.RunOnline(name, flows, seed, durationSec, fullAlloc, meterPower)
}

// RunGeneratedSweep plans a sweep of generated fat-tree and Waxman
// instances (up to 245 and 200 nodes in the full sweep), vets every
// plan with the invariant checker, and measures plan time plus the
// cost of hot-swapping a demand-aware replan into a loaded controller.
// cmd/response-bench -gen writes the result as BENCH_gen.json.
func RunGeneratedSweep(opts GenSweepOpts) (GenSweep, error) {
	return iexp.RunGeneratedSweep(opts)
}

// RunWarmBench times cold plans against warm replans seeded from them
// for each "family:size" of a comma-separated spec (e.g.
// "fattree:14,waxman:50"). cmd/response-bench -warm drives it; CI
// gates on WarmBench.MaxWarmMs.
func RunWarmBench(spec string) (WarmBench, error) {
	return iexp.RunWarmBench(spec)
}

// RunPathBench times a fixed point-to-point K-shortest workload on
// each instance of a "family:size[,…]" spec through the reference path
// engine and each goal-directed engine (ALT, bidirectional),
// cross-checking every answer for byte equality. maxQueries and
// repeats ≤ 0 select defaults (120 queries, best of 3 passes).
// cmd/response-bench -paths drives it and records BENCH_paths.json; CI
// gates on PathBench.WorstSpeedup and PathBench.Mismatches.
func RunPathBench(spec string, maxQueries, repeats int) (PathBench, error) {
	return iexp.RunPathBench(spec, maxQueries, repeats)
}

// RunTraceBench renders a synthetic events-sized incident stream
// through the JSONL flight recorder, ingests it into a trace store and
// times the progressive-disclosure query tiers. queryIters ≤ 0 selects
// the default iteration count. cmd/response-bench -trace drives it and
// records BENCH_trace.json.
func RunTraceBench(events, queryIters int) (TraceBench, error) {
	return iexp.RunTraceBench(events, queryIters)
}

// RunFig1a regenerates Figure 1a over a trace of the given length.
func RunFig1a(days int) Fig1a { return iexp.RunFig1a(days) }

// RunFig1b regenerates Figures 1b/2a, sub-sampling intervals by stride.
func RunFig1b(days, stride int) (Fig1b, error) { return iexp.RunFig1b(days, stride) }

// RunFig2b regenerates Figure 2b on GÉANT and the datacenter trace.
func RunFig2b(geantDays, geantStride, dcDays, dcStride int) (Fig2b, error) {
	return iexp.RunFig2b(geantDays, geantStride, dcDays, dcStride)
}

// RunFig4 regenerates Figure 4 with the given number of sine steps.
func RunFig4(steps int) (Fig4, error) { return iexp.RunFig4(steps) }

// RunFig5 regenerates Figure 5 over a replay of the given length.
func RunFig5(days int) (Fig5, error) { return iexp.RunFig5(days) }

// RunFig6 regenerates Figure 6.
func RunFig6() (Fig6, error) { return iexp.RunFig6() }

// RunFig7 regenerates Figure 7.
func RunFig7() (Fig7, error) { return iexp.RunFig7() }

// RunFig8a regenerates Figure 8a.
func RunFig8a() (Fig8, error) { return iexp.RunFig8a() }

// RunFig8b regenerates Figure 8b.
func RunFig8b() (Fig8, error) { return iexp.RunFig8b() }

// RunFig9 regenerates Figure 9.
func RunFig9() (Fig9, error) { return iexp.RunFig9() }

// RunWeb regenerates the web-workload table.
func RunWeb() (WebTable, error) { return iexp.RunWeb() }

// RunAlwaysOnShare measures the share of OSPF-routable volume the
// always-on paths alone can carry on t (§4.1 reports ≈50 %).
func RunAlwaysOnShare(t *topology.Topology) (AlwaysOnShare, error) {
	return iexp.RunAlwaysOnShare(t)
}

// RunStressSweep sweeps the stress-exclusion fraction (§4.2).
func RunStressSweep(fractions []float64) (StressSweep, error) {
	return iexp.RunStressSweep(fractions)
}

// EndpointSubset returns a deterministic random subset of t's natural
// endpoints, the paper's §5.1 endpoint-selection procedure.
func EndpointSubset(t *topology.Topology, fraction float64, seed int64) []topology.NodeID {
	return iexp.EndpointSubset(t, fraction, seed)
}

// WritePoints writes a result curve as two-column CSV.
func WritePoints(w io.Writer, xLabel, yLabel string, pts []Point) error {
	return itrace.WritePoints(w, xLabel, yLabel, pts)
}
