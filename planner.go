package response

import (
	"context"
	"fmt"
	"io"

	"response/internal/core"
	"response/internal/mcf"
	"response/internal/power"
	"response/internal/spf"
)

// An Option configures a Planner (or a single Plan call). The zero
// configuration plans N=3 paths per pair in ModeStress with the
// Cisco12000 power model — the paper's ISP defaults.
type Option func(*config)

type config struct {
	core       core.PlanOpts
	warm       *Plan
	warmStrict bool
	warmTol    float64
	pathEngine string
	engineSet  bool
}

// Path engine names accepted by WithPathEngine.
const (
	// PathEngineReference is the default engine: the exact Dijkstra /
	// Yen implementation whose outputs the plan fingerprints pin.
	PathEngineReference = "reference"
	// PathEngineALT is certified A* over landmark lower bounds: every
	// query either provably reproduces the reference answer or is
	// transparently re-run through the reference engine, so plans are
	// bit-identical — only faster on goal-friendly topologies.
	PathEngineALT = "alt"
	// PathEngineBidirectional is certified bidirectional Dijkstra,
	// with the same exact-or-fallback contract as PathEngineALT.
	PathEngineBidirectional = "bidirectional"
)

// WithPathEngine selects the shortest-path solver used by every search
// the plan issues: PathEngineReference (the default), PathEngineALT or
// PathEngineBidirectional. The goal-directed engines are
// certified-exact — a query they cannot prove bit-identical to the
// reference engine's falls back to it — so the engine choice never
// changes a plan, only how fast it is computed. An unknown name is
// reported as an error when Plan runs.
func WithPathEngine(name string) Option {
	return func(c *config) { c.pathEngine, c.engineSet = name, true }
}

// WithPaths sets N, the number of energy-critical paths installed per
// origin-destination pair: one always-on, N-2 on-demand, one failover.
// The paper finds N=3 suffices on GÉANT and N=5 on a fat-tree (§3.3).
func WithPaths(n int) Option { return func(c *config) { c.core.N = n } }

// WithMode selects how on-demand paths are computed (default ModeStress).
func WithMode(m Mode) Option { return func(c *config) { c.core.Mode = m } }

// WithStressFactor sets the fraction of top-stressed links excluded per
// on-demand round (default 0.2, the paper's §4.2 sensitivity choice).
// f <= 0 disables exclusion entirely rather than falling back to the
// default.
func WithStressFactor(f float64) Option {
	return func(c *config) {
		if f <= 0 {
			f = -1 // explicit zero: no exclusion (0 would mean "default")
		}
		c.core.StressExclude = f
	}
}

// WithRestarts sets the number of random restarts of the optimal-subset
// search on top of the deterministic orderings (default 4); n <= 0 runs
// only the deterministic orderings. Restarts run concurrently; results
// are independent of GOMAXPROCS.
func WithRestarts(n int) Option {
	return func(c *config) {
		if n <= 0 {
			n = -1 // explicit zero: no random restarts (0 would mean "default")
		}
		c.core.RandomRestarts = n
	}
}

// WithProgress registers a callback invoked at every stage boundary of
// the plan. It runs on the planning goroutine and must return quickly.
func WithProgress(fn func(PlanProgress)) Option {
	return func(c *config) { c.core.Progress = fn }
}

// WithTrace directs human-readable planner tracing to w.
func WithTrace(w io.Writer) Option { return func(c *config) { c.core.Trace = w } }

// WithModel sets the power model pricing network elements (default
// Cisco12000).
func WithModel(m PowerModel) Option { return func(c *config) { c.core.Model = m } }

// WithDelayBound enables the REsPoNse-lat variant: every always-on path
// must satisfy delay ≤ (1+beta) × the OSPF-InvCap path delay (§4.1
// constraint 4; the paper uses beta=0.25).
func WithDelayBound(beta float64) Option { return func(c *config) { c.core.Beta = beta } }

// WithEndpoints restricts the origin-destination universe to the given
// nodes. By default a topology's hosts (when it has any) or all
// non-host nodes exchange traffic.
func WithEndpoints(nodes []NodeID) Option { return func(c *config) { c.core.Nodes = nodes } }

// WithLowMatrix supplies a measured off-peak matrix (d_low) in place of
// the traffic-oblivious ε-demand for the always-on computation.
func WithLowMatrix(m *TrafficMatrix) Option { return func(c *config) { c.core.LowTM = m } }

// WithPeakMatrix supplies the peak-hour matrix (d_peak) required by
// ModeSolver and ModeHeuristic.
func WithPeakMatrix(m *TrafficMatrix) Option { return func(c *config) { c.core.PeakTM = m } }

// WithMaxUtil sets the ISP's link-utilization ceiling (default 1.0).
// The ceiling must be positive; u <= 0 makes Plan fail with a
// configuration error rather than silently selecting the default.
func WithMaxUtil(u float64) Option {
	return func(c *config) {
		if u <= 0 {
			u = -1 // explicit non-positive ceiling: rejected by validation
		}
		c.core.MaxUtil = u
	}
}

// WithSeed seeds the random restarts of the subset search. Plans are
// deterministic for a fixed seed.
func WithSeed(seed int64) Option { return func(c *config) { c.core.Seed = seed } }

// WithWarmStart seeds the plan from a previous plan of the same
// topology: every subset-search stage starts from the corresponding
// stage of prev and re-proves only the delta, skipping the cold
// multi-restart pool when the warm result lands within the tolerance
// (see WithWarmTolerance). With unchanged inputs the warm plan is
// fingerprint-identical to the cold plan in the capacity-slack regime
// and power-equal within the tolerance otherwise; a stage whose seed
// cannot be used falls back to the cold search, so warm-starting never
// changes what is plannable.
//
// A prev computed for a different topology (by fingerprint) is
// silently ignored and the plan runs cold; use WithWarmStartStrict to
// make that an error. A nil prev is a no-op.
func WithWarmStart(prev *Plan) Option {
	return func(c *config) { c.warm, c.warmStrict = prev, false }
}

// WithWarmStartStrict is WithWarmStart, except a prev whose topology
// fingerprint does not match the topology being planned fails the
// plan with ErrWarmStartMismatch instead of silently running cold.
func WithWarmStartStrict(prev *Plan) Option {
	return func(c *config) { c.warm, c.warmStrict = prev, true }
}

// WithWarmTolerance sets the power-regression gate of a warm-started
// plan: each stage's warm result is kept only if its power is within
// (1+tol)× of the warm seed's own power, otherwise the stage re-runs
// cold. Zero selects the default (5%); a negative tol always accepts
// the warm result.
func WithWarmTolerance(tol float64) Option {
	return func(c *config) { c.warmTol = tol }
}

// A Planner precomputes REsPoNse energy-critical path tables. The zero
// value is usable; NewPlanner bakes in a base option set that every
// Plan call starts from.
//
// A Planner is stateless between calls and safe for concurrent use as
// long as its options are (a shared WithTrace writer, for example, must
// itself be concurrency-safe).
type Planner struct {
	base []Option
}

// NewPlanner returns a Planner whose Plan calls start from opts.
func NewPlanner(opts ...Option) *Planner { return &Planner{base: opts} }

// Plan precomputes the energy-critical paths of every origin-destination
// pair of t: always-on paths via the min-power solve, N-2 on-demand
// tables via the configured mode, and one maximally disjoint failover
// path per pair. Per-call opts are applied after the Planner's base
// options.
//
// Plan honors ctx: cancellation propagates into the optimal-subset
// restart pool and aborts promptly with an error satisfying
// errors.Is(err, ErrCanceled). Solver failures satisfy ErrInfeasible or
// ErrDelayBound; invalid configurations (a non-positive WithMaxUtil,
// WithPaths below 3, a missing peak matrix) are reported as plain
// errors before planning starts.
//
// The tables are deterministic: the same topology, options and seed
// produce bit-identical plans regardless of GOMAXPROCS.
func (pl *Planner) Plan(ctx context.Context, t *Topology, opts ...Option) (*Plan, error) {
	cfg := config{core: core.PlanOpts{Model: power.Cisco12000{}}}
	for _, o := range pl.base {
		o(&cfg)
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.engineSet {
		eng, err := spf.ParseEngine(cfg.pathEngine)
		if err != nil {
			return nil, fmt.Errorf("response: %w", err)
		}
		cfg.core.PathEngine = eng
	}
	if cfg.warm != nil {
		if fp := cfg.warm.Topology().Fingerprint(); fp != t.Fingerprint() {
			if cfg.warmStrict {
				return nil, fmt.Errorf("response: plan topology %#x vs warm-start %#x: %w",
					t.Fingerprint(), fp, ErrWarmStartMismatch)
			}
			// Lenient warm-start against the wrong topology: plan cold.
		} else {
			cfg.core.Warm = cfg.warm.Tables().WarmStart()
			cfg.core.Warm.Tolerance = cfg.warmTol
		}
	}
	tables, err := core.PlanContext(ctx, t, cfg.core)
	if err != nil {
		return nil, err
	}
	return &Plan{topo: t, tables: tables}, nil
}

// MaxRoutableScale returns (to ~2 % precision) the largest multiplier s
// such that base scaled by s still routes on the full topology. Use it
// to anchor synthetic traffic at a realistic operating point.
func MaxRoutableScale(t *Topology, base *TrafficMatrix) float64 {
	return mcf.MaxFeasibleScale(t, base, mcf.RouteOpts{}, 0.02)
}
