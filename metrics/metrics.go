// Package metrics is the public surface of the response module's
// runtime counters: zero-allocation atomic counters the simulator,
// traffic-engineering controller and plan lifecycle manager increment
// on their hot paths, plus a Prometheus text-format renderer.
//
//	rt := &metrics.Runtime{}
//	s := simulate.New(topo, simulate.Opts{Metrics: rt})
//	...
//	metrics.WritePrometheus(w, []metrics.Labeled{{Tenant: "prod", Runtime: rt}})
//
// A nil *Runtime disables metering entirely — the hot paths skip the
// increments, so untraced runs pay nothing. See DESIGN.md §11 for the
// metric inventory.
package metrics

import (
	"io"

	im "response/internal/metrics"
)

type (
	// Runtime bundles every runtime counter family; wire one into
	// simulate.Opts.Metrics, ControllerOpts.Metrics or the lifecycle
	// manager's Opts.Metrics.
	Runtime = im.Runtime
	// Labeled pairs a Runtime with its tenant label for rendering.
	Labeled = im.Labeled
	// Counter is a zero-allocation monotonic counter.
	Counter = im.Counter
	// FloatCounter is a zero-allocation monotonic float sum.
	FloatCounter = im.FloatCounter
	// Gauge is a zero-allocation last-value gauge.
	Gauge = im.Gauge
)

// WritePrometheus renders every runtime in Prometheus text exposition
// format (version 0.0.4), metric-major, skipping nil runtimes.
func WritePrometheus(w io.Writer, sets []Labeled) error {
	return im.WritePrometheus(w, sets)
}
