// Package faultinject is the public chaos-engineering surface of the
// response module: a seed-deterministic Injector that wraps a
// lifecycle.ReplanFunc and the plan-artifact staging path with
// configurable control-plane faults — planner errors, infeasibility,
// deadline-blown slow replans, panics, and bit-flipped or truncated
// plan artifacts.
//
// It is a thin re-export layer over the module's internal injector;
// see DESIGN.md §8 for the failure model and the degraded-mode
// contract the lifecycle manager upholds under injection.
//
//	inj := faultinject.New(faultinject.Config{Seed: 7, ErrorRate: 0.3})
//	mgr := lifecycle.New(sim, ctrl, plan, inj.WrapReplan(replan),
//	        lifecycle.Opts{ArtifactFilter: inj.ArtifactFilter()})
package faultinject

import ifi "response/internal/faultinject"

// Core injector types.
type (
	// Config sets the per-call fault rates (all probabilities in
	// [0, 1]; the zero value injects nothing).
	Config = ifi.Config
	// Counts tallies what an Injector actually did.
	Counts = ifi.Counts
	// Injector injects control-plane faults per one Config.
	Injector = ifi.Injector
)

// ErrInjected is the error returned for an injected generic planner
// failure.
var ErrInjected = ifi.ErrInjected

// New builds an injector. A zero-rate config yields a transparent
// injector (every call passes through).
func New(cfg Config) *Injector { return ifi.New(cfg) }
