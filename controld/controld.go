// Package controld is the public surface of the response module's
// planning-as-a-service daemon: a multi-tenant control plane hosting
// many independent REsPoNse control loops in one process behind a
// REST/JSON management API.
//
// It is a thin re-export layer over the module's internal daemon; see
// DESIGN.md §9 for the API table, the artifact-store layout and the
// concurrency argument, and cmd/response-controld for the binary.
//
//	srv := controld.New(controld.Opts{Workers: 4})
//	http.ListenAndServe(addr, srv.Handler())
//	...
//	srv.Drain(ctx) // graceful: cancel jobs, stop tenants, end streams
package controld

import (
	ictl "response/internal/controld"
)

// Core daemon types.
type (
	// Server is the control-plane daemon: tenant registry, fair-queue
	// plan-job scheduler, per-tenant artifact store, event hub and the
	// HTTP management API over them.
	Server = ictl.Server
	// Opts parameterizes a Server: worker-slot count, per-tenant
	// artifact retention, event buffering and the plan-hook test seam.
	Opts = ictl.Opts
	// Job is one asynchronous plan computation, cancellable while
	// queued or mid-plan.
	Job = ictl.Job
	// JobState is a plan job's lifecycle state.
	JobState = ictl.JobState
	// TenantStatus is the status document GET /v1/tenants/{id} serves.
	TenantStatus = ictl.TenantStatus
)

// Registration and patch request bodies.
type (
	// TenantSpec is the POST /v1/tenants registration body.
	TenantSpec = ictl.TenantSpec
	// TopologySpec selects the tenant topology: builtin name, topogen
	// family spec, or inline node/link JSON.
	TopologySpec = ictl.TopologySpec
	// GenSpec is the wire form of a topogen family spec.
	GenSpec = ictl.GenSpec
	// InlineTopology is an explicit node/link list.
	InlineTopology = ictl.InlineTopology
	// InlineNode declares one inline-topology node.
	InlineNode = ictl.InlineNode
	// InlineLink declares one inline-topology link.
	InlineLink = ictl.InlineLink
	// WorkloadSpec sizes the tenant's managed-flow replay.
	WorkloadSpec = ictl.WorkloadSpec
	// PolicySpec seeds the tenant's lifecycle trigger policy.
	PolicySpec = ictl.PolicySpec
	// FaultSpec enables control-plane fault injection on the tenant's
	// replan path.
	FaultSpec = ictl.FaultSpec
	// PolicyPatch is the PATCH /v1/tenants/{id}/config body: pointer
	// fields, merged and validated whole before any of it applies.
	PolicyPatch = ictl.PolicyPatch
)

// Job states. A job is terminal in JobDone, JobFailed or JobCanceled.
const (
	JobQueued   = ictl.JobQueued
	JobRunning  = ictl.JobRunning
	JobDone     = ictl.JobDone
	JobFailed   = ictl.JobFailed
	JobCanceled = ictl.JobCanceled
)

// New builds a Server. Mount Handler on an http.Server; Drain it on
// shutdown.
func New(opts Opts) *Server { return ictl.New(opts) }
