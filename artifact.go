package response

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"response/internal/core"
	"response/internal/topo"
)

// The plan artifact format: a fixed 40-byte binary header followed by a
// JSON payload. The header makes an artifact self-describing and
// refusable without parsing the body; the JSON body keeps the path
// tables inspectable with standard tooling.
//
//	offset size field
//	0      8    magic "RESPLAN\n"
//	8      2    format version, big-endian uint16 (ArtifactVersion)
//	10     2    reserved, must be zero
//	12     8    topology fingerprint, big-endian uint64
//	20     8    tables fingerprint, big-endian uint64
//	28     4    CRC-32 (IEEE) of the payload
//	32     8    payload length in bytes, big-endian uint64
//	40     …    JSON payload (pairs in deterministic order)
//
// Version policy: the version is bumped whenever the header layout or
// payload schema changes incompatibly; readers reject any version they
// were not built for (ErrVersionSkew) rather than guessing. Writers
// always emit the current version.
const (
	// ArtifactVersion is the plan artifact format version this build
	// reads and writes.
	ArtifactVersion = 1

	artifactMagic      = "RESPLAN\n"
	artifactHeaderSize = 40
	// maxArtifactPayload bounds the payload allocation when reading
	// untrusted artifacts (far above any real plan's size).
	maxArtifactPayload = 1 << 26
)

// planPayload is the JSON body of a plan artifact.
type planPayload struct {
	Topology string        `json:"topology"`
	Variant  string        `json:"variant"`
	Pairs    []pairPayload `json:"pairs"`
}

// pairPayload serializes one pair's installed paths as arc-ID sequences.
type pairPayload struct {
	O        int     `json:"o"`
	D        int     `json:"d"`
	AlwaysOn []int   `json:"always_on"`
	OnDemand [][]int `json:"on_demand,omitempty"`
	Failover []int   `json:"failover,omitempty"`
}

func arcInts(p topo.Path) []int {
	if p.Empty() {
		return nil
	}
	out := make([]int, len(p.Arcs))
	for i, a := range p.Arcs {
		out[i] = int(a)
	}
	return out
}

func pathFromInts(t *topo.Topology, arcs []int) (topo.Path, error) {
	if len(arcs) == 0 {
		return topo.Path{}, nil
	}
	ids := make([]topo.ArcID, len(arcs))
	for i, a := range arcs {
		ids[i] = topo.ArcID(a)
	}
	return topo.NewPath(t, ids)
}

// marshalPayload renders the plan's canonical JSON body: pairs in
// PairKeys order, paths as arc-ID arrays. There is exactly one valid
// serialization of a given plan; ReadPlanFrom enforces it.
func (p *Plan) marshalPayload() ([]byte, error) {
	payload := planPayload{Topology: p.topo.Name, Variant: p.tables.Variant}
	for _, k := range p.tables.PairKeys() {
		ps := p.tables.Pairs[k]
		pp := pairPayload{
			O: int(k[0]), D: int(k[1]),
			AlwaysOn: arcInts(ps.AlwaysOn),
			Failover: arcInts(ps.Failover),
		}
		for _, od := range ps.OnDemand {
			pp.OnDemand = append(pp.OnDemand, arcInts(od))
		}
		payload.Pairs = append(payload.Pairs, pp)
	}
	return json.Marshal(&payload)
}

// WriteTo serializes the plan in the versioned artifact format. The
// output is deterministic: the same plan always produces the same
// bytes, and a ReadPlanFrom→WriteTo round trip is byte-identical.
// It implements io.WriterTo.
func (p *Plan) WriteTo(w io.Writer) (int64, error) {
	body, err := p.marshalPayload()
	if err != nil {
		return 0, err
	}

	var hdr [artifactHeaderSize]byte
	copy(hdr[0:8], artifactMagic)
	binary.BigEndian.PutUint16(hdr[8:10], ArtifactVersion)
	binary.BigEndian.PutUint64(hdr[12:20], p.topo.Fingerprint())
	binary.BigEndian.PutUint64(hdr[20:28], p.tables.Fingerprint())
	binary.BigEndian.PutUint32(hdr[28:32], crc32.ChecksumIEEE(body))
	binary.BigEndian.PutUint64(hdr[32:40], uint64(len(body)))

	n, err := w.Write(hdr[:])
	total := int64(n)
	if err != nil {
		return total, err
	}
	n, err = w.Write(body)
	return total + int64(n), err
}

// ReadPlanFrom deserializes a plan artifact against the topology it was
// computed for. Every failure mode returns an error — never a panic —
// classified under ErrBadArtifact, ErrVersionSkew or
// ErrTopologyMismatch; a plan is only returned after its paths have
// been validated against t and its content fingerprint has been
// re-verified, so a loaded plan drives the online controller and the
// simulator exactly as the freshly computed one would.
func ReadPlanFrom(r io.Reader, t *Topology) (*Plan, error) {
	var hdr [artifactHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadArtifact, err)
	}
	if string(hdr[0:8]) != artifactMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadArtifact)
	}
	if v := binary.BigEndian.Uint16(hdr[8:10]); v != ArtifactVersion {
		return nil, fmt.Errorf("%w: artifact version %d, this build reads version %d",
			ErrVersionSkew, v, ArtifactVersion)
	}
	if hdr[10] != 0 || hdr[11] != 0 {
		return nil, fmt.Errorf("%w: nonzero reserved bytes", ErrBadArtifact)
	}
	if fp := binary.BigEndian.Uint64(hdr[12:20]); fp != t.Fingerprint() {
		return nil, fmt.Errorf("%w: artifact %016x vs %q %016x",
			ErrTopologyMismatch, fp, t.Name, t.Fingerprint())
	}
	tablesFP := binary.BigEndian.Uint64(hdr[20:28])
	crc := binary.BigEndian.Uint32(hdr[28:32])
	size := binary.BigEndian.Uint64(hdr[32:40])
	if size > maxArtifactPayload {
		return nil, fmt.Errorf("%w: payload length %d exceeds limit", ErrBadArtifact, size)
	}
	// Read the payload incrementally instead of pre-allocating the
	// declared length: the daemon accepts artifacts over HTTP, where a
	// hostile header declaring a near-limit length followed by a short
	// body must not cost a full-size allocation before the truncation
	// is even detectable. The buffer grows geometrically with the bytes
	// actually received and is bounded by the (already vetted) declared
	// size, so memory is proportional to what the peer really sent.
	body := make([]byte, 0, int(min(size, 64<<10)))
	for uint64(len(body)) < size {
		chunk := size - uint64(len(body))
		if chunk > 1<<20 {
			chunk = 1 << 20
		}
		off := len(body)
		body = append(body, make([]byte, chunk)...)
		if _, err := io.ReadFull(r, body[off:]); err != nil {
			return nil, fmt.Errorf("%w: truncated payload: %v", ErrBadArtifact, err)
		}
	}
	if got := crc32.ChecksumIEEE(body); got != crc {
		return nil, fmt.Errorf("%w: payload checksum mismatch", ErrBadArtifact)
	}
	var payload planPayload
	if err := json.Unmarshal(body, &payload); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadArtifact, err)
	}

	tables := &core.Tables{
		Topo:    t,
		Pairs:   make(map[[2]topo.NodeID]*core.PathSet, len(payload.Pairs)),
		Variant: payload.Variant,
	}
	for _, pp := range payload.Pairs {
		if pp.O < 0 || pp.O >= t.NumNodes() || pp.D < 0 || pp.D >= t.NumNodes() || pp.O == pp.D {
			return nil, fmt.Errorf("%w: bad pair %d->%d", ErrBadArtifact, pp.O, pp.D)
		}
		key := [2]topo.NodeID{topo.NodeID(pp.O), topo.NodeID(pp.D)}
		if _, dup := tables.Pairs[key]; dup {
			return nil, fmt.Errorf("%w: duplicate pair %d->%d", ErrBadArtifact, pp.O, pp.D)
		}
		ps := &core.PathSet{}
		var err error
		if ps.AlwaysOn, err = pathFromInts(t, pp.AlwaysOn); err != nil {
			return nil, fmt.Errorf("%w: pair %d->%d always-on: %v", ErrBadArtifact, pp.O, pp.D, err)
		}
		if ps.AlwaysOn.Empty() {
			return nil, fmt.Errorf("%w: pair %d->%d has no always-on path", ErrBadArtifact, pp.O, pp.D)
		}
		for li, od := range pp.OnDemand {
			pth, err := pathFromInts(t, od)
			if err != nil {
				return nil, fmt.Errorf("%w: pair %d->%d on-demand[%d]: %v", ErrBadArtifact, pp.O, pp.D, li, err)
			}
			ps.OnDemand = append(ps.OnDemand, pth)
		}
		if ps.Failover, err = pathFromInts(t, pp.Failover); err != nil {
			return nil, fmt.Errorf("%w: pair %d->%d failover: %v", ErrBadArtifact, pp.O, pp.D, err)
		}
		tables.Pairs[key] = ps
	}
	tables.ComputeAlwaysOnSet()
	if err := tables.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadArtifact, err)
	}
	if got := tables.Fingerprint(); got != tablesFP {
		return nil, fmt.Errorf("%w: content fingerprint %016x, header says %016x",
			ErrBadArtifact, got, tablesFP)
	}
	plan := &Plan{topo: t, tables: tables}
	// Canonical-form check: the payload must be byte-for-byte what this
	// build would write for these tables. This rejects hand-edited
	// bodies the fingerprints cannot see (reordered pairs, a rewritten
	// topology/variant string, cosmetic JSON changes) and upgrades the
	// round-trip guarantee to a hard invariant: every accepted artifact
	// re-serializes to exactly the bytes that were read.
	if canonical, err := plan.marshalPayload(); err != nil || !bytes.Equal(canonical, body) {
		return nil, fmt.Errorf("%w: payload not in canonical form", ErrBadArtifact)
	}
	return plan, nil
}
