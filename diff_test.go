package response_test

// DiffPlans contract: deterministic structural delta between two plans
// of one topology, identical-plan short-circuit, and refusal to compare
// across topologies. The daemon artifact API and `response-analyze
// diff` both ship the PlanDiff verbatim, so its counts must be
// internally consistent.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"response"
	"response/internal/topogen"
)

func diffInstance(t *testing.T, seed int64) (*response.Plan, *response.Plan) {
	t.Helper()
	inst, err := topogen.Generate(topogen.Config{
		Family: topogen.FamilyWaxman, Size: 16, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	planner := response.NewPlanner(response.WithEndpoints(inst.Endpoints))
	a, err := planner.Plan(context.Background(), inst.Topo)
	if err != nil {
		t.Fatal(err)
	}
	b, err := planner.Plan(context.Background(), inst.Topo, response.WithLowMatrix(inst.TM))
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestDiffPlansIdentical(t *testing.T) {
	a, _ := diffInstance(t, 3)
	d, err := response.DiffPlans(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Identical {
		t.Fatal("self-diff not identical")
	}
	if d.PairsAdded != 0 || d.PairsRemoved != 0 || d.PairsChanged != 0 || len(d.Pairs) != 0 {
		t.Fatalf("self-diff has deltas: %+v", d)
	}
	if d.PairsUnchanged != d.PairsA || d.PairsA != d.PairsB {
		t.Fatalf("self-diff pair counts inconsistent: %+v", d)
	}
	if len(d.PinnedAddedLinks) != 0 || len(d.PinnedRemovedLinks) != 0 || d.WattsDelta != 0 {
		t.Fatalf("self-diff has pinned/power deltas: %+v", d)
	}
	if !strings.Contains(d.Summary(), "identical") {
		t.Fatalf("Summary() = %q", d.Summary())
	}
}

func TestDiffPlansDelta(t *testing.T) {
	a, b := diffInstance(t, 3)
	if a.Fingerprint() == b.Fingerprint() {
		t.Skip("ε-plan and demand-aware replan converged on this seed")
	}
	d, err := response.DiffPlans(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Identical {
		t.Fatal("differing fingerprints reported identical")
	}
	if d.FingerprintA != a.Fingerprint() || d.FingerprintB != b.Fingerprint() {
		t.Fatalf("fingerprints not carried: %+v", d)
	}
	// Count consistency: every pair in A is removed, changed or
	// unchanged; every pair in B is added, changed or unchanged; the
	// listed pairs are exactly the non-unchanged ones.
	if d.PairsA != d.PairsRemoved+d.PairsChanged+d.PairsUnchanged {
		t.Fatalf("A-side counts inconsistent: %+v", d)
	}
	if d.PairsB != d.PairsAdded+d.PairsChanged+d.PairsUnchanged {
		t.Fatalf("B-side counts inconsistent: %+v", d)
	}
	if len(d.Pairs) != d.PairsAdded+d.PairsRemoved+d.PairsChanged {
		t.Fatalf("pair list length %d vs counts %+v", len(d.Pairs), d)
	}
	if d.PairsChanged == 0 && d.PairsAdded == 0 && d.PairsRemoved == 0 {
		t.Fatal("differing plans produced an empty delta")
	}
	// Deterministic (o, d) order.
	for i := 1; i < len(d.Pairs); i++ {
		p, q := d.Pairs[i-1], d.Pairs[i]
		if p.O > q.O || (p.O == q.O && p.D >= q.D) {
			t.Fatalf("pair list out of order at %d: %+v then %+v", i, p, q)
		}
	}
	for _, p := range d.Pairs {
		if p.Change == response.PairChanged && !p.AlwaysOn && !p.OnDemand && !p.Failover {
			t.Fatalf("changed pair %d->%d with no level flagged", p.O, p.D)
		}
	}
	if d.WattsA <= 0 || d.WattsB <= 0 {
		t.Fatalf("non-positive baseline power: %+v", d)
	}
	if d.WattsDelta != d.WattsB-d.WattsA {
		t.Fatalf("watts delta %g != %g - %g", d.WattsDelta, d.WattsB, d.WattsA)
	}
	// Deterministic across calls, both directions consistent.
	d2, err := response.DiffPlans(a, b)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(d)
	j2, _ := json.Marshal(d2)
	if !bytes.Equal(j1, j2) {
		t.Fatal("DiffPlans is not deterministic")
	}
	rev, err := response.DiffPlans(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if rev.PairsAdded != d.PairsRemoved || rev.PairsRemoved != d.PairsAdded ||
		rev.PairsChanged != d.PairsChanged || rev.WattsDelta != -d.WattsDelta {
		t.Fatalf("reverse diff not symmetric: %+v vs %+v", rev, d)
	}
	var buf bytes.Buffer
	d.Print(&buf)
	if buf.Len() == 0 || !strings.Contains(buf.String(), "pairs:") {
		t.Fatalf("Print output: %q", buf.String())
	}
}

func TestDiffPlansTopologyMismatch(t *testing.T) {
	a, _ := diffInstance(t, 3)
	c, _ := diffInstance(t, 4)
	if _, err := response.DiffPlans(a, c); !errors.Is(err, response.ErrTopologyMismatch) {
		t.Fatalf("cross-topology diff error = %v, want ErrTopologyMismatch", err)
	}
	if _, err := response.DiffPlans(nil, a); err == nil {
		t.Fatal("nil plan accepted")
	}
}
