// Package topology is the public network-model surface of the response
// module: directed-arc multigraphs of routers, switches and hosts
// annotated with link capacities and propagation latencies, plus
// builders for every topology the paper evaluates.
//
// It is a thin re-export layer over the module's internal model, so
// values constructed here flow directly into response.Planner,
// response/trafficmatrix and response/simulate.
package topology

import "response/internal/topo"

// Core graph types.
type (
	// Topology is an immutable-after-build network graph.
	Topology = topo.Topology
	// Node is a vertex: a router, switch or host.
	Node = topo.Node
	// NodeID identifies a node within a Topology.
	NodeID = topo.NodeID
	// Arc is one direction of a physical link.
	Arc = topo.Arc
	// ArcID identifies a directed arc.
	ArcID = topo.ArcID
	// Link is an undirected physical link (a pair of arcs).
	Link = topo.Link
	// LinkID identifies a physical link.
	LinkID = topo.LinkID
	// Kind classifies nodes (router, core, aggregation, edge, host).
	Kind = topo.Kind
	// Path is a loop-free arc sequence between two nodes.
	Path = topo.Path
	// ActiveSet records the power state of every router and link.
	ActiveSet = topo.ActiveSet
	// FatTree is a k-ary fat-tree datacenter topology with layer maps.
	FatTree = topo.FatTree
	// FatTreeOpts parameterizes NewFatTree.
	FatTreeOpts = topo.FatTreeOpts
	// Example is the 10-router topology of the paper's Figure 3.
	Example = topo.Example
	// ExampleOpts parameterizes NewExample.
	ExampleOpts = topo.ExampleOpts
	// PopAccess is the hierarchical Italian PoP-access ISP topology.
	PopAccess = topo.PopAccess
	// PopAccessOpts parameterizes NewPopAccess.
	PopAccessOpts = topo.PopAccessOpts
)

// Node kinds.
const (
	KindRouter = topo.KindRouter
	KindCore   = topo.KindCore
	KindAggr   = topo.KindAggr
	KindEdge   = topo.KindEdge
	KindHost   = topo.KindHost
)

// Bandwidth units in bits per second.
const (
	Kbps = topo.Kbps
	Mbps = topo.Mbps
	Gbps = topo.Gbps
)

// New returns an empty topology with the given name; grow it with the
// Topology.AddNode/AddLink builder methods.
func New(name string) *Topology { return topo.New(name) }

// NewPath builds a Path from arcs, verifying contiguity against t.
func NewPath(t *Topology, arcs []ArcID) (Path, error) { return topo.NewPath(t, arcs) }

// AllOn returns an ActiveSet with every element powered.
func AllOn(t *Topology) *ActiveSet { return topo.AllOn(t) }

// AllOff returns an ActiveSet with every element unpowered.
func AllOff(t *Topology) *ActiveSet { return topo.AllOff(t) }

// NewGeant returns the 23-PoP GÉANT European research network.
func NewGeant() *Topology { return topo.NewGeant() }

// NewAbovenet returns the Rocketfuel PoP-level Abovenet approximation.
func NewAbovenet() *Topology { return topo.NewAbovenet() }

// NewGenuity returns the Rocketfuel PoP-level Genuity approximation.
func NewGenuity() *Topology { return topo.NewGenuity() }

// NewFatTree returns a k-ary fat-tree (k even, ≥ 2), optionally with
// hosts attached to its edge switches.
func NewFatTree(k int, opts FatTreeOpts) (*FatTree, error) { return topo.NewFatTree(k, opts) }

// NewExample returns the 10-router example topology of Figure 3.
func NewExample(opts ExampleOpts) *Example { return topo.NewExample(opts) }

// NewPopAccess returns the hierarchical PoP-access ISP topology.
func NewPopAccess(opts PopAccessOpts) *PopAccess { return topo.NewPopAccess(opts) }
