package response_test

// Benchmark harness: one benchmark per figure/table of the paper's
// evaluation (see DESIGN.md §5 for the experiment index; the expected
// paper values are quoted in each benchmark's comment).
//
// Each benchmark regenerates its figure end-to-end per iteration and
// reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. Traces are shortened relative to
// the paper (2 days instead of 15/8) to keep a full run in minutes;
// cmd/response-bench runs the longer versions.

import (
	"testing"

	"response/internal/experiments"
	"response/internal/power"
	"response/internal/sim"
	"response/internal/te"
	"response/internal/topo"
)

// BenchmarkFig1aTrafficDeviation regenerates Figure 1a: the CCDF of
// 5-minute traffic deviation in the datacenter trace. Paper: ≈50 % of
// intervals change by ≥20 %.
func BenchmarkFig1aTrafficDeviation(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig1a(2)
		frac = res.FracGE20
	}
	b.ReportMetric(frac, "fracGE20%")
}

// BenchmarkFig1bRecomputationRate regenerates Figure 1b: per-interval
// re-optimization of the GÉANT replay and the resulting recomputation
// rate. Paper: up to 4/hour (the trace-granularity cap).
func BenchmarkFig1bRecomputationRate(b *testing.B) {
	var maxRate float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig1b(2, 2)
		if err != nil {
			b.Fatal(err)
		}
		maxRate = res.MaxPerHour
	}
	b.ReportMetric(maxRate, "max/hour")
}

// BenchmarkFig2aConfigDominance regenerates Figure 2a: distinct routing
// configurations and the dominant one's share. Paper: ≈13 configs, the
// minimal power tree active ≈60 % of the time.
func BenchmarkFig2aConfigDominance(b *testing.B) {
	var dominant float64
	var configs int
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig1b(2, 2)
		if err != nil {
			b.Fatal(err)
		}
		configs = len(res.Dominance)
		dominant = res.Dominance[0].Fraction
	}
	b.ReportMetric(dominant*100, "dominant%")
	b.ReportMetric(float64(configs), "configs")
}

// BenchmarkFig2bCriticalPathCoverage regenerates Figure 2b: traffic
// coverage of the top-X paths per pair. Paper: GÉANT 3 paths ≈100 %;
// fat-tree (36-core) needs ≈5.
func BenchmarkFig2bCriticalPathCoverage(b *testing.B) {
	var geant3, ft5 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig2b(2, 2, 1, 24)
		if err != nil {
			b.Fatal(err)
		}
		geant3 = res.Geant[2]
		ft5 = res.FatTree[4]
	}
	b.ReportMetric(geant3*100, "geant-top3%")
	b.ReportMetric(ft5*100, "fattree-top5%")
}

// BenchmarkFig4FatTreeSine regenerates Figure 4: power under a sine
// demand in a k=4 fat-tree. Paper: REsPoNse(near) < REsPoNse(far) <
// ECMP = 100 %.
func BenchmarkFig4FatTreeSine(b *testing.B) {
	var near, far float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig4(10)
		if err != nil {
			b.Fatal(err)
		}
		near = mean(res.Near)
		far = mean(res.Far)
	}
	b.ReportMetric(near, "near-power%")
	b.ReportMetric(far, "far-power%")
}

// BenchmarkFig5GeantReplay regenerates Figure 5: the multi-day GÉANT
// replay over once-computed tables. Paper: ≈30 % savings today, ≈42 %
// with the alternative hardware model, zero recomputations.
func BenchmarkFig5GeantReplay(b *testing.B) {
	var today, alt float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig5(2)
		if err != nil {
			b.Fatal(err)
		}
		today = res.MeanSavingsToday
		alt = res.MeanSavingsAlt
	}
	b.ReportMetric(today, "savings%")
	b.ReportMetric(alt, "savings-altHW%")
}

// BenchmarkFig6GenuityUtilization regenerates Figure 6: the Genuity
// power sweep across util-10/50/100 for all five techniques.
func BenchmarkFig6GenuityUtilization(b *testing.B) {
	var respLow, optLow float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6()
		if err != nil {
			b.Fatal(err)
		}
		respLow = res.Power["REsPoNse"][0]
		optLow = res.Power["Optimal"][0]
	}
	b.ReportMetric(respLow, "response-util10%")
	b.ReportMetric(optLow, "optimal-util10%")
}

// BenchmarkFig7ClickFailover regenerates Figure 7: consolidation within
// ≈2 RTTs of TE start and restoration after the middle-link failure.
func BenchmarkFig7ClickFailover(b *testing.B) {
	var consolidated, restored float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7()
		if err != nil {
			b.Fatal(err)
		}
		consolidated = res.ConsolidatedAt
		restored = res.RestoredAt
	}
	b.ReportMetric(consolidated-5, "consolidate-s")
	b.ReportMetric(restored-5.7, "restore-s")
}

// BenchmarkFig8aPopAccess regenerates Figure 8a: stepped demands on the
// PoP-access ISP with 5 s wake-ups. Paper: rates track demand within a
// few RTTs, except one 5 s wake stall.
func BenchmarkFig8aPopAccess(b *testing.B) {
	var lag float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig8a()
		if err != nil {
			b.Fatal(err)
		}
		lag = res.MaxLagSec
	}
	b.ReportMetric(lag, "worst-lag-s")
}

// BenchmarkFig8bFatTree regenerates Figure 8b: the same schedule on a
// k=4 fat-tree, where small RTTs make tracking even tighter.
func BenchmarkFig8bFatTree(b *testing.B) {
	var lag float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig8b()
		if err != nil {
			b.Fatal(err)
		}
		lag = res.MaxLagSec
	}
	b.ReportMetric(lag, "worst-lag-s")
}

// BenchmarkFig9Streaming regenerates Figure 9: the fraction of
// streaming clients able to play the video under REsPoNse-lat vs.
// OSPF-InvCap at 50 and 100 clients. Paper: no significant difference;
// block latency +≈5 %.
func BenchmarkFig9Streaming(b *testing.B) {
	var repMedian, invMedian, latInc float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig9()
		if err != nil {
			b.Fatal(err)
		}
		repMedian = res.Boxes["REP-lat100"].Median
		invMedian = res.Boxes["InvCap100"].Median
		latInc = res.BlockLatencyIncreasePct
	}
	b.ReportMetric(repMedian, "rep100-median%")
	b.ReportMetric(invMedian, "invcap100-median%")
	b.ReportMetric(latInc, "blocklat-inc%")
}

// BenchmarkWebWorkload regenerates the §5.4 web experiment. Paper: web
// retrieval latency increases by ≈9 % under REsPoNse-lat.
func BenchmarkWebWorkload(b *testing.B) {
	var inc float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunWeb()
		if err != nil {
			b.Fatal(err)
		}
		inc = res.IncreasePct
	}
	b.ReportMetric(inc, "latency-inc%")
}

// BenchmarkAlwaysOnCapacityShare regenerates the §4.1 claim that
// always-on paths alone carry ≈50 % of the OSPF-routable volume.
func BenchmarkAlwaysOnCapacityShare(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAlwaysOnShare(topo.NewGeant())
		if err != nil {
			b.Fatal(err)
		}
		share = res.Share
	}
	b.ReportMetric(share*100, "share%")
}

// BenchmarkStressFactorSensitivity is the §4.2 ablation: peak-carrying
// capability of the installed tables as the stress-exclusion fraction
// sweeps 0–40 %. Paper: 20 % suffices.
func BenchmarkStressFactorSensitivity(b *testing.B) {
	var at20 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunStressSweep([]float64{0, 0.2, 0.4})
		if err != nil {
			b.Fatal(err)
		}
		at20 = res.PeakShare[1]
	}
	b.ReportMetric(at20*100, "peak-at-20pct%")
}

// BenchmarkTEAgentOverhead measures the per-decision cost of the
// REsPoNseTE agent. The paper reports 2–3 % of per-packet router time;
// here the metric is nanoseconds per decision on the Figure 3 setup.
func BenchmarkTEAgentOverhead(b *testing.B) {
	ex := topo.NewExample(topo.ExampleOpts{})
	s := sim.New(ex.Topology, sim.Opts{Model: power.Cisco12000{}})
	ctrl := te.NewController(s, te.Opts{NoProbeDelay: true})
	fa, err := s.AddFlow(ex.A, ex.K, 2.5*topo.Mbps,
		[]topo.Path{ex.MiddlePath(ex.A), ex.UpperPath()})
	if err != nil {
		b.Fatal(err)
	}
	ctrl.Manage(fa)
	s.Run(0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.DecideOnce(fa)
	}
}

// BenchmarkPlanGeant measures the one-time off-line planning cost on
// GÉANT — the cost REsPoNse pays once instead of per traffic change.
func BenchmarkPlanGeant(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAlwaysOnShare(topo.NewGeant()); err != nil {
			b.Fatal(err)
		}
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
